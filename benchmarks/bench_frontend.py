"""F1 — the pre-processor overhead claims of section 3.1.

"Queries without preferences are just passed through to the database
system without causing any noticeable overhead."  Benchmarks the
pass-through fast path against raw sqlite, plus parser and optimizer
throughput on the paper's most complex query.
"""

import sqlite3

import repro
from repro.rewrite.planner import rewrite_statement
from repro.sql.parser import parse_statement

COMPLEX_QUERY = (
    "SELECT * FROM car WHERE make = 'Opel' "
    "PREFERRING (category = 'roadster' ELSE category <> 'passenger' AND "
    "price AROUND 40000 AND HIGHEST(power)) "
    "CASCADE color = 'red' CASCADE LOWEST(mileage)"
)


def test_parse_complex_query(benchmark):
    statement = benchmark(lambda: parse_statement(COMPLEX_QUERY))
    assert statement.is_preference_query


def test_rewrite_complex_query(benchmark):
    statement = parse_statement(COMPLEX_QUERY)
    result = benchmark(lambda: rewrite_statement(statement))
    assert result.rewritten


def test_passthrough_overhead(benchmark, fixtures_connection):
    """Driver pass-through: keyword scan + delegation, no parsing."""
    rows = benchmark(
        lambda: fixtures_connection.execute(
            "SELECT * FROM oldtimer WHERE age > 30"
        ).fetchall()
    )
    assert len(rows) == 4


def test_raw_sqlite_baseline(benchmark, fixtures_connection):
    """The same query on the naked sqlite connection, for comparison."""
    raw = fixtures_connection.raw
    rows = benchmark(
        lambda: raw.execute("SELECT * FROM oldtimer WHERE age > 30").fetchall()
    )
    assert len(rows) == 4
