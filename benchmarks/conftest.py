"""Shared fixtures for the benchmark suite (pytest-benchmark)."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

import repro  # noqa: E402
from repro.workloads.fixtures import load_fixtures  # noqa: E402
from repro.workloads.jobs import load_jobs  # noqa: E402

#: Row count for the jobs table; scaled down from the paper's 1.4 M so a
#: full benchmark run stays in CI territory (see DESIGN.md substitutions).
JOBS_ROWS = 30_000


@pytest.fixture(scope="session")
def jobs_connection():
    """One shared connection with the jobs benchmark table loaded."""
    con = repro.connect(":memory:")
    load_jobs(con, n=JOBS_ROWS)
    yield con
    con.close()


@pytest.fixture(scope="session")
def fixtures_connection():
    """One shared connection with the paper fixtures loaded."""
    con = repro.connect(":memory:")
    load_fixtures(con)
    yield con
    con.close()
