"""E1 — the section 3.3 job-search benchmark table.

Regenerates the paper's only measurement table: wall-clock time for three
pre-selection sizes (300 / 600 / 1000 survivors) × two second-selection
condition sets × three solutions (conjunctive SQL, disjunctive SQL, Pareto
Preference SQL).  Absolute numbers differ from the paper's Informix/AIX
testbed; the reproduction target is the *shape* — asserted below.
"""

import pytest

from repro.workloads.jobs import CONDITION_SETS, POOLS, benchmark_queries

CELLS = [
    (pool, conditions)
    for pool in POOLS
    for conditions in CONDITION_SETS
]


@pytest.mark.parametrize("pool,conditions", CELLS, ids=lambda v: str(v))
class TestE1Cell:
    def test_sql1_conjunctive(self, benchmark, jobs_connection, pool, conditions):
        queries = benchmark_queries(pool, conditions)
        rows = benchmark(lambda: jobs_connection.execute(queries.conjunctive).fetchall())
        benchmark.extra_info["result_rows"] = len(rows)
        # Starvation: the conjunctive answer is (near-)empty.
        assert len(rows) <= int(pool) * 0.05

    def test_sql2_disjunctive(self, benchmark, jobs_connection, pool, conditions):
        queries = benchmark_queries(pool, conditions)
        rows = benchmark(lambda: jobs_connection.execute(queries.disjunctive).fetchall())
        benchmark.extra_info["result_rows"] = len(rows)
        # Flooding: most of the pool comes back.
        assert len(rows) >= int(pool) * 0.3

    def test_preference_sql(self, benchmark, jobs_connection, pool, conditions):
        queries = benchmark_queries(pool, conditions)
        rows = benchmark(lambda: jobs_connection.execute(queries.preferring).fetchall())
        benchmark.extra_info["result_rows"] = len(rows)
        # Best matches only: a small, non-empty shortlist.
        assert 1 <= len(rows) <= 50
