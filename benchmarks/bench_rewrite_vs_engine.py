"""E7 — the same preference query via sqlite rewrite vs in-memory engine.

The paper anticipates that "implementing a generalized skyline operator in
the kernel of an SQL-system clearly hold[s] much promise for additional
speed-ups"; the in-memory BNL engine stands in for that kernel operator.
Both paths must return the same number of winners at every size.
"""

import pytest

import repro
from repro.engine import PreferenceEngine
from repro.workloads.distributions import independent, lowest_preference_sql, vectors_to_relation
from repro.workloads.fixtures import relation_to_sqlite

SQL = "SELECT * FROM points PREFERRING " + lowest_preference_sql(3)


def make_relation(n):
    return vectors_to_relation(independent(n, 3, seed=3))


@pytest.mark.parametrize("n", [1000, 8000])
def test_sqlite_not_exists(benchmark, n):
    relation = make_relation(n)
    con = repro.connect(":memory:")
    relation_to_sqlite(con, "points", relation)
    rows = benchmark(lambda: con.execute(SQL).fetchall())
    benchmark.extra_info["winners"] = len(rows)
    engine = PreferenceEngine({"points": relation})
    assert len(rows) == len(engine.execute(SQL))
    con.close()


@pytest.mark.parametrize("n", [1000, 8000])
def test_engine_bnl(benchmark, n):
    relation = make_relation(n)
    engine = PreferenceEngine({"points": relation})
    result = benchmark(lambda: engine.execute(SQL))
    benchmark.extra_info["winners"] = len(result)
    assert len(result) >= 1
