"""E9 — partitioned parallel skyline execution vs the serial algorithms.

Benchmarks the skyline stage of a grouped query (the part the partitioned
executor changes) and asserts the serial and parallel paths report the
same winners — the timing claim of the E9 experiment in miniature.
"""

from repro.engine.bmo import bmo_filter
from repro.model.builder import build_preference
from repro.sql.parser import parse_preferring
from repro.workloads.jobs import CONDITION_SETS, jobs_relation

N = 10_000


def _grouped_inputs():
    relation = jobs_relation(n=N)
    preferring = " AND ".join(soft for _hard, soft in CONDITION_SETS["A"])
    preference = build_preference(parse_preferring(preferring))
    positions = {name.lower(): i for i, name in enumerate(relation.columns)}
    slots = [positions[op.name.lower()] for op in preference.operands]
    vectors = [tuple(row[i] for i in slots) for row in relation.rows]
    region, profession = positions["region"], positions["profession"]
    keys = [(row[region], row[profession]) for row in relation.rows]
    return preference, vectors, keys


def test_serial_grouped_skyline(benchmark):
    preference, vectors, keys = _grouped_inputs()
    winners = benchmark(
        lambda: bmo_filter(preference, vectors, group_keys=keys, algorithm="bnl")
    )
    assert winners


def test_parallel_grouped_skyline(benchmark):
    preference, vectors, keys = _grouped_inputs()
    serial = bmo_filter(preference, vectors, group_keys=keys, algorithm="bnl")
    winners = benchmark(
        lambda: bmo_filter(
            preference, vectors, group_keys=keys, algorithm="parallel"
        )
    )
    assert winners == serial
