"""E2 — the section 2.2.3 oldtimer answer-explanation example.

The adorned Pareto-optimal result must match the paper's printed table
row for row; the benchmark measures the full driver path (parse → rewrite
→ sqlite → fetch).
"""

QUERY = (
    "SELECT ident, color, age, LEVEL(color), DISTANCE(age) FROM oldtimer "
    "PREFERRING color = 'white' ELSE color = 'yellow' AND age AROUND 40"
)

EXPECTED = {
    ("Selma", "red", 40, 3, 0),
    ("Homer", "yellow", 35, 2, 5),
    ("Maggie", "white", 19, 1, 21),
}


def test_oldtimer_adorned_result(benchmark, fixtures_connection):
    rows = benchmark(lambda: fixtures_connection.execute(QUERY).fetchall())
    assert {tuple(r) for r in rows} == EXPECTED


def test_oldtimer_without_explanation(benchmark, fixtures_connection):
    query = (
        "SELECT ident FROM oldtimer PREFERRING color = 'white' ELSE "
        "color = 'yellow' AND age AROUND 40"
    )
    rows = benchmark(lambda: fixtures_connection.execute(query).fetchall())
    assert {r[0] for r in rows} == {"Selma", "Homer", "Maggie"}
