"""E4 — the section 4.3 COSIMA observations.

Benchmarks the preference-evaluation step of a meta-search session (the
paper reports it adds "only a small overhead" to shop-access-dominated
latency) and asserts the Pareto-set-size claim over a session batch.
"""

from repro.workloads.cosima import MetaSearch, make_catalog, make_shops


def make_search() -> MetaSearch:
    return MetaSearch(shops=make_shops(3), catalog=make_catalog(120))


def test_session_preference_evaluation(benchmark):
    search = make_search()
    result = benchmark(lambda: search.run_session(42))
    assert 1 <= result.pareto_size <= 20
    # Preference evaluation is a small fraction of the simulated total.
    assert result.preference_seconds < result.shop_seconds


def test_pareto_sizes_predominantly_1_to_20():
    search = make_search()
    sizes = [r.pareto_size for r in search.run_sessions(100)]
    in_range = sum(1 for s in sizes if 1 <= s <= 20)
    assert in_range >= 90  # "predominantly"


def test_preference_share_of_total_latency():
    search = make_search()
    sessions = search.run_sessions(50)
    total = sum(r.total_seconds for r in sessions)
    preference = sum(r.preference_seconds for r in sessions)
    assert preference / total < 0.1
