"""E10 — incremental view maintenance vs full recompute, in miniature.

Benchmarks the maintenance cost of one INSERT against a materialized
preference view in both maintenance modes, asserting the materialized
rows stay identical to a fresh recompute — the timing claim of the E10
experiment reduced to its hot path.
"""

import repro
from repro.workloads.fixtures import relation_to_sqlite
from repro.workloads.shop import washing_machines_relation

N = 4_000

VIEW_SQL = (
    "SELECT * FROM products PREFERRING LOWEST(price) AND "
    "LOWEST(powerconsumption) AND LOWEST(waterconsumption) "
    "GROUPING manufacturer"
)


def _connection(mode: str) -> repro.Connection:
    connection = repro.connect(":memory:")
    relation_to_sqlite(connection, "products", washing_machines_relation(rows=N))
    connection.execute(f"CREATE PREFERENCE VIEW best AS {VIEW_SQL}")
    connection.view_maintenance_mode = mode
    return connection

def _insert(connection, box):
    box["id"] += 1
    connection.execute(
        "INSERT INTO products VALUES "
        f"({N + box['id']}, 'Miola', 60, 1400, 0.9, 40, 900)"
    )


def _assert_fresh(connection):
    materialized = sorted(connection.execute("SELECT * FROM best").fetchall())
    oracle = sorted(connection.execute(VIEW_SQL, algorithm="sfs").fetchall())
    assert materialized == oracle


def test_insert_maintenance_incremental(benchmark):
    connection = _connection("auto")
    box = {"id": 0}
    benchmark(lambda: _insert(connection, box))
    _assert_fresh(connection)
    connection.close()


def test_insert_maintenance_recompute(benchmark):
    connection = _connection("recompute")
    box = {"id": 0}
    benchmark(lambda: _insert(connection, box))
    _assert_fresh(connection)
    connection.close()
