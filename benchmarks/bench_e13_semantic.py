"""E13 — semantic optimization on a keyed weak-order workload.

Benchmarks the constraint-driven rewrites against the evaluating
strategies on a keyed shop catalog (``INTEGER PRIMARY KEY`` plus
``NOT NULL`` value columns — the schema shape the constraint catalog
sniffs without declarations): the weak-order cascade single pass, the
keyed single winner, and the winnow-eliminated key-pinned selection,
each asserting winner parity against a forced in-memory strategy
(forced strategies bypass the semantic pass and evaluate the original
preference).  The E13 experiment in miniature.
"""

import repro
from repro.workloads.shop import washing_machines_relation

ROWS = 10_000

CASCADE = (
    "SELECT * FROM products PREFERRING LOWEST(price) "
    "CASCADE LOWEST(powerconsumption) CASCADE LOWEST(waterconsumption)"
)
KEYED_WINNER = "SELECT * FROM products PREFERRING HIGHEST(product_id)"
PINNED = (
    "SELECT * FROM products WHERE product_id = 37 "
    "PREFERRING LOWEST(price) AND LOWEST(powerconsumption)"
)


def _connection():
    connection = repro.connect(":memory:")
    relation = washing_machines_relation(rows=ROWS)
    connection.execute(
        "CREATE TABLE products ("
        "product_id INTEGER PRIMARY KEY, manufacturer TEXT NOT NULL, "
        "width INTEGER NOT NULL, spinspeed INTEGER NOT NULL, "
        "powerconsumption REAL NOT NULL, waterconsumption INTEGER NOT NULL, "
        "price INTEGER NOT NULL)"
    )
    connection.cursor().executemany(
        "INSERT INTO products VALUES (?, ?, ?, ?, ?, ?, ?)", relation.rows
    )
    connection.commit()
    return connection


def _oracle(connection, query):
    return sorted(
        connection.execute(query, algorithm="sfs").fetchall(), key=repr
    )


def test_cascade_semantic_single_pass(benchmark):
    connection = _connection()
    oracle = _oracle(connection, CASCADE)
    cursor = connection.execute(CASCADE)
    assert cursor.plan is not None
    assert cursor.plan.semantic_rule == "weak-order single pass"
    rows = benchmark(lambda: connection.execute(CASCADE).fetchall())
    assert sorted(rows, key=repr) == oracle
    connection.close()


def test_cascade_columnar_in_memory(benchmark):
    connection = _connection()
    oracle = _oracle(connection, CASCADE)
    rows = benchmark(
        lambda: connection.execute(CASCADE, algorithm="sfs").fetchall()
    )
    assert sorted(rows, key=repr) == oracle
    connection.close()


def test_keyed_single_winner(benchmark):
    connection = _connection()
    oracle = _oracle(connection, KEYED_WINNER)
    cursor = connection.execute(KEYED_WINNER)
    assert cursor.plan is not None
    assert cursor.plan.semantic_rule == (
        "weak-order single pass (keyed single winner)"
    )
    rows = benchmark(lambda: connection.execute(KEYED_WINNER).fetchall())
    assert len(rows) == 1
    assert sorted(rows, key=repr) == oracle
    connection.close()


def test_winnow_eliminated_selection(benchmark):
    connection = _connection()
    oracle = _oracle(connection, PINNED)
    cursor = connection.execute(PINNED)
    assert cursor.plan is not None
    assert cursor.plan.semantic_rule == "winnow-eliminated (keyed selection)"
    rows = benchmark(lambda: connection.execute(PINNED).fetchall())
    assert sorted(rows, key=repr) == oracle
    connection.close()
