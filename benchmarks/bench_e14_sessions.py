"""E14 — session reuse: a refined query served from the cached BMO set.

Benchmarks a faceted-browsing step: the shop base query runs once and
captures its winner base in the session cache; the refined query (the
same preference with a tie-breaker cascaded on) is then answered by
re-winnowing the cached winners without touching the base table.  The
served step is measured against the fresh full evaluation of the same
refined query on a session-disabled connection, asserting row parity.
The E14 experiment in miniature.
"""

import repro
from repro.plan.cost import SESSION_STRATEGY
from repro.workloads.shop import washing_machines_relation

ROWS = 4_000

BASE = (
    "SELECT * FROM products "
    "PREFERRING LOWEST(price) AND LOWEST(powerconsumption)"
)
REFINED = BASE + " CASCADE manufacturer IN ('Miola')"


def _connection():
    connection = repro.connect(":memory:")
    relation = washing_machines_relation(rows=ROWS)
    # Deliberately unkeyed (no PRIMARY KEY / NOT NULL): the semantic
    # pass must not replace the winnow, or there is nothing to cache.
    connection.execute(
        "CREATE TABLE products ("
        "product_id INTEGER, manufacturer TEXT, width INTEGER, "
        "spinspeed INTEGER, powerconsumption REAL, waterconsumption "
        "INTEGER, price INTEGER)"
    )
    connection.cursor().executemany(
        "INSERT INTO products VALUES (?, ?, ?, ?, ?, ?, ?)", relation.rows
    )
    connection.commit()
    connection.execute("ANALYZE")
    return connection


def _fresh_rows(query):
    connection = _connection()
    connection.session_reuse = False
    rows = sorted(connection.execute(query).fetchall(), key=repr)
    connection.close()
    return rows


def test_refined_step_served_from_session(benchmark):
    connection = _connection()
    fresh = _fresh_rows(REFINED)

    base_cursor = connection.execute(BASE)
    assert base_cursor.plan is not None and base_cursor.plan.uses_engine
    base_cursor.fetchall()

    cursor = connection.execute(REFINED)
    assert cursor.plan is not None
    assert cursor.plan.strategy == SESSION_STRATEGY
    assert cursor.plan.session_delta_sql is None
    cursor.fetchall()

    rows = benchmark(lambda: connection.execute(REFINED).fetchall())
    assert sorted(rows, key=repr) == fresh
    assert connection.session_stats()["served"] >= 1
    connection.close()


def test_refined_step_fresh_evaluation(benchmark):
    connection = _connection()
    connection.session_reuse = False
    fresh = _fresh_rows(REFINED)
    rows = benchmark(lambda: connection.execute(REFINED).fetchall())
    assert sorted(rows, key=repr) == fresh
    assert connection.session_stats()["served"] == 0
    connection.close()
