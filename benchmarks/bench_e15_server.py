"""E15 — the preference query server under concurrent session traffic.

Benchmarks one slice of each part of the e15 experiment: the skyline
offload paths (serial columnar kernel vs the forced process pool over
shared-memory rank transport) and one burst of Zipfian session traffic
through the asyncio server, asserting row parity against a standalone
connection.  The E15 experiment in miniature.
"""

import asyncio
import os
import shutil
import tempfile

import pytest

import repro
from repro.bench.conftest import *  # noqa: F401,F403 - benchmark fixtures
from repro.engine.columns import columnar_skyline, compute_rank_columns
from repro.engine.parallel import ParallelExecutor
from repro.model.builder import build_preference
from repro.sql.parser import parse_preferring
from repro.workloads.distributions import DISTRIBUTIONS, lowest_preference_sql
from repro.workloads.traffic import (
    load_traffic_database,
    query_chains,
    zipfian_schedule,
)

ROWS = 16_000
DIMENSIONS = 3


def _ranked_workload():
    matrix = DISTRIBUTIONS["anticorrelated"](ROWS, DIMENSIONS, seed=15)
    vectors = [tuple(row) for row in matrix.tolist()]
    preference = build_preference(
        parse_preferring(lowest_preference_sql(DIMENSIONS))
    )
    ranks = compute_rank_columns(preference, vectors)
    assert ranks is not None
    return preference, vectors, ranks


def test_serial_columnar_kernel(benchmark):
    _preference, _vectors, ranks = _ranked_workload()
    winners = benchmark(
        lambda: columnar_skyline(ranks, range(ROWS), flavor="sfs")
    )
    assert winners


def test_process_pool_offload(benchmark):
    preference, vectors, ranks = _ranked_workload()
    serial = sorted(columnar_skyline(ranks, range(ROWS), flavor="sfs"))
    with ParallelExecutor(max_workers=2, backend="process") as executor:
        winners = benchmark(
            lambda: executor.maximal_indices(preference, vectors, ranks=ranks)
        )
        assert executor.last_backend == "process"
    assert sorted(winners) == serial


@pytest.fixture()
def traffic_database():
    directory = tempfile.mkdtemp(prefix="repro-bench-e15-")
    database = os.path.join(directory, "traffic.db")
    loader = repro.connect(database)
    load_traffic_database(loader, scale=0.25)
    loader.execute("ANALYZE")
    loader.close()
    yield database
    shutil.rmtree(directory, ignore_errors=True)


def test_traffic_burst(benchmark, traffic_database):
    from repro.server import PreferenceClient, PreferenceServer

    chains = query_chains()
    schedule = zipfian_schedule(len(chains), sessions=30, seed=29)

    async def burst():
        async with PreferenceServer(traffic_database, pool_size=2) as server:
            client = await PreferenceClient.connect(server.host, server.port)
            count = 0
            try:
                for index in schedule:
                    for sql in chains[index].statements:
                        _columns, rows = await client.query(sql)
                        count += 1
            finally:
                await client.close()
            return count, server.stats()

    count, stats = benchmark(lambda: asyncio.run(burst()))
    assert count == sum(len(chains[i].statements) for i in schedule)
    assert stats["admission"]["errors"] == 0
    assert stats["plan_cache"]["hit_rate"] > 0.5
