"""E12 — join-aware preference planning on the car/dealer workload.

Benchmarks one multi-table preference query through the three join
execution paths — the NOT EXISTS rewrite, the generic join scan + an
in-memory skyline, and the winnow-over-join pushdown — asserting winner
parity against the rewrite, the E12 experiment in miniature.
"""

import repro
from repro.workloads.cardealer import load_car_dealer

CARS = 8_000
DEALERS = 200

QUERY = (
    "SELECT * FROM cars c, listings l WHERE c.car_id = l.car_id "
    "AND l.active = 1 PREFERRING LOWEST(c.price) AND HIGHEST(c.power)"
)


def _connection():
    connection = repro.connect(":memory:")
    load_car_dealer(connection, cars=CARS, dealers=DEALERS)
    return connection


def test_join_rewrite(benchmark):
    connection = _connection()
    rows = benchmark(
        lambda: connection.execute(QUERY, algorithm="rewrite").fetchall()
    )
    assert rows
    connection.close()


def test_join_in_memory(benchmark):
    connection = _connection()
    oracle = sorted(
        connection.execute(QUERY, algorithm="rewrite").fetchall(), key=repr
    )
    rows = benchmark(
        lambda: connection.execute(QUERY, algorithm="sfs").fetchall()
    )
    assert sorted(rows, key=repr) == oracle
    connection.close()


def test_join_winnow_pushdown(benchmark):
    connection = _connection()
    oracle = sorted(
        connection.execute(QUERY, algorithm="rewrite").fetchall(), key=repr
    )
    plan = connection.plan(QUERY, force="prejoin")
    assert plan.strategy == "prejoin" and plan.prejoin_scan_sql
    rows = benchmark(
        lambda: connection.execute(QUERY, algorithm="prejoin").fetchall()
    )
    assert sorted(rows, key=repr) == oracle
    connection.close()
