"""E16 — fault-tolerant serving: inert-harness cost and chaos traffic.

Benchmarks the two costs the robustness tentpole must keep honest: an
inert injection point (one module-global ``None`` check — the price
production pays for the chaos harness being compiled in) and a burst of
Zipfian session traffic under a ~5% fault mix with client retries,
asserting zero client-visible wrong answers against a fresh-connection
oracle.  The E16 experiment in miniature.
"""

import asyncio
import os
import shutil
import sqlite3
import tempfile

import pytest

import repro
from repro.testing import FaultPlan, FaultRule, faults, injected
from repro.testing.faults import break_pooled_connection
from repro.workloads.traffic import (
    load_traffic_database,
    query_chains,
    zipfian_schedule,
)


def test_inert_injection_point(benchmark):
    faults.uninstall()
    assert benchmark(lambda: faults.fire("driver.execute", sql="x")) is False


@pytest.fixture()
def traffic_database():
    directory = tempfile.mkdtemp(prefix="repro-bench-e16-")
    database = os.path.join(directory, "traffic.db")
    loader = repro.connect(database)
    load_traffic_database(loader, scale=0.25)
    loader.execute("ANALYZE")
    loader.close()
    yield database
    shutil.rmtree(directory, ignore_errors=True)


def test_chaos_traffic_burst(benchmark, traffic_database):
    from repro.server import PreferenceClient, PreferenceServer, ServerError

    chains = query_chains()
    schedule = zipfian_schedule(len(chains), sessions=30, seed=29)

    oracle = {}
    fresh = repro.connect(traffic_database)
    fresh.session_reuse = False
    for chain in chains:
        for sql in chain.statements:
            if sql not in oracle:
                oracle[sql] = sorted(
                    [list(row) for row in fresh.execute(sql).fetchall()],
                    key=repr,
                )
    fresh.close()

    def plan():
        return FaultPlan(
            [
                FaultRule(
                    "driver.execute",
                    times=None,
                    probability=0.03,
                    error=lambda: sqlite3.OperationalError("chaos"),
                ),
                FaultRule(
                    "pool.checkout",
                    times=None,
                    probability=0.02,
                    action=break_pooled_connection,
                ),
            ],
            seed=16,
        )

    async def burst():
        async with PreferenceServer(traffic_database, pool_size=2) as server:
            client = await PreferenceClient.connect(server.host, server.port)
            wrong = served = surfaced = 0
            try:
                with injected(plan()):
                    for index in schedule:
                        for sql in chains[index].statements:
                            try:
                                _columns, rows = await client.query(
                                    sql, retries=3, backoff=0.02
                                )
                            except ServerError:
                                surfaced += 1
                                continue
                            served += 1
                            if sorted(rows, key=repr) != oracle[sql]:
                                wrong += 1
            finally:
                await client.close()
            return wrong, served, surfaced, server.stats()

    wrong, served, surfaced, stats = benchmark(lambda: asyncio.run(burst()))
    assert wrong == 0
    assert served >= 1
    admission = stats["admission"]
    assert admission["admitted"] == (
        admission["served"] + admission["errors"] + admission["cancelled"]
    )
