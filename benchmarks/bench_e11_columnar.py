"""E11 — columnar rank-vector kernels vs the row-at-a-time seed core.

Benchmarks the skyline stage of a grouped rank-based query through the
columnar core (shared rank columns + tuple kernels) and through the SQL
rank pushdown end to end, asserting winner parity with the closure-based
evaluation the seed shipped — the timing claim of the E11 experiment in
miniature.
"""

import repro
from repro.engine.bmo import bmo_filter, run_in_memory_plan
from repro.model.builder import build_preference
from repro.sql.parser import parse_preferring
from repro.workloads.fixtures import relation_to_sqlite
from repro.workloads.jobs import CONDITION_SETS, jobs_relation

N = 10_000


def _grouped_inputs():
    relation = jobs_relation(n=N)
    preferring = " AND ".join(soft for _hard, soft in CONDITION_SETS["A"])
    preference = build_preference(parse_preferring(preferring))
    positions = {name.lower(): i for i, name in enumerate(relation.columns)}
    slots = [positions[op.name.lower()] for op in preference.operands]
    vectors = [tuple(row[i] for i in slots) for row in relation.rows]
    region, profession = positions["region"], positions["profession"]
    keys = [(row[region], row[profession]) for row in relation.rows]
    return relation, preference, vectors, keys


def test_columnar_grouped_skyline(benchmark):
    _relation, preference, vectors, keys = _grouped_inputs()
    winners = benchmark(
        lambda: bmo_filter(preference, vectors, group_keys=keys, algorithm="sfs")
    )
    assert winners


def test_columnar_flavors_agree(benchmark):
    _relation, preference, vectors, keys = _grouped_inputs()
    sfs = bmo_filter(preference, vectors, group_keys=keys, algorithm="sfs")
    bnl = benchmark(
        lambda: bmo_filter(preference, vectors, group_keys=keys, algorithm="bnl")
    )
    assert bnl == sfs


def test_sql_rank_pushdown_end_to_end(benchmark):
    relation, _preference, _vectors, _keys = _grouped_inputs()
    connection = repro.connect(":memory:")
    relation_to_sqlite(connection, "jobs", relation)
    preferring = " AND ".join(soft for _hard, soft in CONDITION_SETS["A"])
    query = (
        f"SELECT * FROM jobs PREFERRING {preferring} "
        "GROUPING region, profession"
    )
    plan = connection.plan(query, force="sfs")
    assert plan.rank_source == "sql" and plan.rank_width
    oracle = sorted(
        connection.execute(query, algorithm="rewrite").fetchall(), key=repr
    )
    result = benchmark(
        lambda: run_in_memory_plan(connection.raw.execute, plan)
    )
    assert sorted(result.rows, key=repr) == oracle
    connection.close()
