"""E3 — the section 3.2 Cars rewrite: planner vs paper-style script.

Benchmarks the Preference SQL Optimizer itself (parse + rewrite, no
execution) and both execution paths; asserts the paper's winners
{Audi A6, BMW 5 series}.
"""

import repro
from repro.rewrite.planner import rewrite_statement
from repro.sql.parser import parse_statement

QUERY = "SELECT * FROM Cars PREFERRING Make = 'Audi' AND Diesel = 'yes'"


def test_rewrite_only(benchmark):
    """Pre-processor overhead: parse + rewrite + print, no execution."""
    def rewrite():
        statement = parse_statement(QUERY)
        return repro.to_sql(rewrite_statement(statement).statement)

    sql = benchmark(rewrite)
    assert "NOT EXISTS" in sql


def test_planner_execution(benchmark, fixtures_connection):
    rows = benchmark(lambda: fixtures_connection.execute(QUERY).fetchall())
    assert sorted(r[0] for r in rows) == [1, 2]


def test_paper_script_execution(benchmark, fixtures_connection):
    script = repro.paper_style_script(parse_statement(QUERY), view_name="aux_bench")
    raw = fixtures_connection.raw

    def run():
        raw.execute(script[0])
        try:
            return raw.execute(script[1]).fetchall()
        finally:
            raw.execute(script[2])

    rows = benchmark(run)
    assert sorted(r[0] for r in rows) == [1, 2]
