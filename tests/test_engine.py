"""The in-memory engine: full query-block execution and BMO semantics."""

import pytest

from repro.engine import PreferenceEngine, Relation
from repro.engine.bmo import bmo_filter
from repro.errors import EvaluationError, PreferenceConstructionError
from repro.model.builder import build_preference
from repro.sql.parser import parse_preferring


@pytest.fixture
def engine(fixture_engine):
    return fixture_engine


class TestPlainSql:
    def test_select_star(self, engine):
        result = engine.execute("SELECT * FROM oldtimer")
        assert len(result) == 6
        assert result.columns == ("ident", "color", "age")

    def test_where_filter(self, engine):
        result = engine.execute("SELECT ident FROM oldtimer WHERE age > 40")
        assert {row[0] for row in result} == {"Smithers", "Skinner"}

    def test_projection_and_alias(self, engine):
        result = engine.execute("SELECT age * 2 AS doubled FROM oldtimer WHERE ident = 'Selma'")
        assert result.columns == ("doubled",)
        assert result.rows == [(80,)]

    def test_order_by_and_limit(self, engine):
        result = engine.execute("SELECT ident, age FROM oldtimer ORDER BY age DESC LIMIT 2")
        assert [row[0] for row in result] == ["Skinner", "Smithers"]

    def test_order_by_ascending_nulls_first(self):
        engine = PreferenceEngine(
            {"t": Relation(columns=("x",), rows=[(2,), (None,), (1,)])}
        )
        result = engine.execute("SELECT x FROM t ORDER BY x")
        assert result.rows == [(None,), (1,), (2,)]

    def test_limit_offset(self, engine):
        result = engine.execute("SELECT ident FROM oldtimer ORDER BY age LIMIT 2 OFFSET 1")
        assert len(result) == 2

    def test_distinct(self, engine):
        result = engine.execute("SELECT DISTINCT color FROM oldtimer")
        assert len(result) == 4

    def test_qualified_star(self, engine):
        result = engine.execute("SELECT o.* FROM oldtimer AS o WHERE o.age = 40")
        assert result.rows == [("Selma", "red", 40)]

    def test_cross_product_comma_join(self):
        engine = PreferenceEngine(
            {
                "a": Relation(columns=("x",), rows=[(1,), (2,)]),
                "b": Relation(columns=("y",), rows=[(10,), (20,)]),
            }
        )
        result = engine.execute("SELECT x, y FROM a, b")
        assert len(result) == 4

    def test_inner_join(self):
        engine = PreferenceEngine(
            {
                "a": Relation(columns=("id", "x"), rows=[(1, "p"), (2, "q")]),
                "b": Relation(columns=("id", "y"), rows=[(1, "P"), (3, "R")]),
            }
        )
        result = engine.execute("SELECT a.x, b.y FROM a JOIN b ON a.id = b.id")
        assert result.rows == [("p", "P")]

    def test_left_join_fills_nulls(self):
        engine = PreferenceEngine(
            {
                "a": Relation(columns=("id",), rows=[(1,), (2,)]),
                "b": Relation(columns=("bid", "y"), rows=[(1, "P")]),
            }
        )
        result = engine.execute("SELECT id, y FROM a LEFT JOIN b ON a.id = b.bid")
        assert sorted(result.rows) == [(1, "P"), (2, None)]

    def test_derived_table(self, engine):
        result = engine.execute(
            "SELECT s.ident FROM (SELECT * FROM oldtimer WHERE age > 40) AS s"
        )
        assert len(result) == 2

    def test_exists_subquery(self):
        engine = PreferenceEngine(
            {
                "a": Relation(columns=("id",), rows=[(1,), (2,)]),
                "b": Relation(columns=("id",), rows=[(2,)]),
            }
        )
        result = engine.execute(
            "SELECT id FROM a WHERE EXISTS (SELECT 1 FROM b WHERE b.id = a.id)"
        )
        assert result.rows == [(2,)]

    def test_in_subquery(self):
        engine = PreferenceEngine(
            {
                "a": Relation(columns=("id",), rows=[(1,), (2,), (3,)]),
                "b": Relation(columns=("id",), rows=[(2,), (3,)]),
            }
        )
        result = engine.execute("SELECT id FROM a WHERE id IN (SELECT id FROM b)")
        assert len(result) == 2

    def test_aggregation_rejected(self, engine):
        with pytest.raises(EvaluationError):
            engine.execute("SELECT color, COUNT(*) FROM oldtimer GROUP BY color")

    def test_unknown_table_raises(self, engine):
        with pytest.raises(EvaluationError):
            engine.execute("SELECT * FROM missing")

    def test_insert_values(self):
        engine = PreferenceEngine({"t": Relation(columns=("a", "b"))})
        engine.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert len(engine.relation("t")) == 2

    def test_insert_select_preferring(self, engine):
        engine.register("best", Relation(columns=("ident", "color", "age")))
        engine.execute(
            "INSERT INTO best SELECT * FROM oldtimer PREFERRING HIGHEST(age)"
        )
        assert engine.relation("best").rows == [("Skinner", "yellow", 51)]


class TestPreferenceQueries:
    def test_around_best_matches_only(self, engine):
        result = engine.execute("SELECT * FROM trips PREFERRING duration AROUND 14")
        assert {row[0] for row in result} == {5, 7}  # the 14-day trips

    def test_highest(self, engine):
        result = engine.execute("SELECT * FROM apartments PREFERRING HIGHEST(area)")
        assert {row[0] for row in result} == {5}

    def test_pos_with_fallback(self):
        # No java/C++ programmer present: everyone else is a best match.
        engine = PreferenceEngine(
            {
                "programmers": Relation(
                    columns=("name", "exp"),
                    rows=[("A", "perl"), ("B", "cobol")],
                )
            }
        )
        result = engine.execute(
            "SELECT * FROM programmers PREFERRING exp IN ('java', 'C++')"
        )
        assert len(result) == 2

    def test_neg(self, engine):
        result = engine.execute(
            "SELECT name FROM hotels PREFERRING location <> 'downtown'"
        )
        assert {row[0] for row in result} == {"Gartenhof", "Airport Inn", "Parkhotel"}

    def test_pareto_computers(self, engine):
        result = engine.execute(
            "SELECT model FROM computers "
            "PREFERRING HIGHEST(main_memory) AND HIGHEST(cpu_speed)"
        )
        # GamerRig (1024 MB, 1000 MHz) dominates ThinkCentre (512, 1000)
        # and PowerBox (1024, 666); OfficeLine survives on cpu_speed 1200.
        assert {row[0] for row in result} == {"GamerRig", "OfficeLine"}

    def test_cascade_computers(self, engine):
        result = engine.execute(
            "SELECT model, color FROM computers "
            "PREFERRING HIGHEST(main_memory) CASCADE color IN ('black','brown')"
        )
        assert {row[0] for row in result} == {"PowerBox", "GamerRig"} - {"GamerRig"} or True
        rows = {row[0] for row in result}
        # 1024 MB machines: PowerBox (brown) and GamerRig (green): the
        # cascade keeps the brown one only.
        assert rows == {"PowerBox"}

    def test_where_applies_before_preferring(self, engine):
        result = engine.execute(
            "SELECT * FROM apartments WHERE city = 'Augsburg' "
            "PREFERRING HIGHEST(area)"
        )
        assert {row[0] for row in result} == {2, 3}

    def test_empty_candidates_give_empty_result(self, engine):
        result = engine.execute(
            "SELECT * FROM apartments WHERE city = 'Nowhere' "
            "PREFERRING HIGHEST(area)"
        )
        assert len(result) == 0

    def test_explicit_preference_query(self):
        engine = PreferenceEngine(
            {
                "shirts": Relation(
                    columns=("id", "color"),
                    rows=[(1, "red"), (2, "blue"), (3, "green"), (4, "purple")],
                )
            }
        )
        result = engine.execute(
            "SELECT id FROM shirts PREFERRING "
            "EXPLICIT(color, 'red' > 'blue', 'blue' > 'green')"
        )
        # red beats blue beats green; purple is incomparable -> stays.
        assert {row[0] for row in result} == {1, 4}

    def test_contains_preference(self):
        engine = PreferenceEngine(
            {
                "rooms": Relation(
                    columns=("id", "description"),
                    rows=[
                        (1, "quiet room with balcony"),
                        (2, "room with balcony"),
                        (3, "noisy room"),
                    ],
                )
            }
        )
        result = engine.execute(
            "SELECT id FROM rooms PREFERRING description CONTAINS 'quiet balcony'"
        )
        assert result.rows == [(1,)]

    def test_score_preference(self):
        engine = PreferenceEngine(
            {
                "cars": Relation(
                    columns=("id", "power", "price"),
                    rows=[(1, 100.0, 10000), (2, 200.0, 10000), (3, 100.0, 20000)],
                )
            }
        )
        result = engine.execute(
            "SELECT id FROM cars PREFERRING SCORE(power / price)"
        )
        assert result.rows == [(2,)]

    def test_order_by_on_preference_result(self, engine):
        result = engine.execute(
            "SELECT model, price FROM computers "
            "PREFERRING HIGHEST(main_memory) AND HIGHEST(cpu_speed) "
            "ORDER BY price"
        )
        assert [row[0] for row in result] == ["OfficeLine", "GamerRig"]


class TestGrouping:
    def test_grouping_partitions_bmo(self, engine):
        # Best (largest) apartment per city.
        result = engine.execute(
            "SELECT city, apartment_id, area FROM apartments "
            "PREFERRING HIGHEST(area) GROUPING city"
        )
        assert {(row[0], row[1]) for row in result} == {("Augsburg", 2), ("Augsburg", 3), ("Munich", 5)}

    def test_grouping_with_null_keys(self):
        engine = PreferenceEngine(
            {
                "t": Relation(
                    columns=("g", "x"),
                    rows=[("a", 1), ("a", 2), (None, 5), (None, 3)],
                )
            }
        )
        result = engine.execute(
            "SELECT g, x FROM t PREFERRING LOWEST(x) GROUPING g"
        )
        assert set(result.rows) == {("a", 1), (None, 3)}

    def test_multi_column_grouping(self):
        engine = PreferenceEngine(
            {
                "t": Relation(
                    columns=("g", "h", "x"),
                    rows=[("a", 1, 1), ("a", 1, 2), ("a", 2, 9), ("b", 1, 5)],
                )
            }
        )
        result = engine.execute(
            "SELECT g, h, x FROM t PREFERRING LOWEST(x) GROUPING g, h"
        )
        assert set(result.rows) == {("a", 1, 1), ("a", 2, 9), ("b", 1, 5)}


class TestButOnly:
    def test_threshold_filters_candidates(self, engine):
        result = engine.execute(
            "SELECT trip_id FROM trips "
            "PREFERRING start_day AROUND 184 AND duration AROUND 14 "
            "BUT ONLY DISTANCE(start_day) <= 2 AND DISTANCE(duration) <= 2"
        )
        # Trips 2 and 7 pass the threshold; trip 7 (distances 0, 0) is a
        # perfect match and dominates trip 2 (1, 1): BMO keeps only 7.
        assert {row[0] for row in result} == {7}

    def test_threshold_keeps_incomparable_survivors(self, engine):
        result = engine.execute(
            "SELECT trip_id FROM trips WHERE trip_id <> 7 "
            "PREFERRING start_day AROUND 184 AND duration AROUND 14 "
            "BUT ONLY DISTANCE(start_day) <= 3 AND DISTANCE(duration) <= 4"
        )
        # Without the perfect trip 7: trips 2 (1,1), 3 (0,4), 4 (2,1)
        # pass; 2 dominates 4, 3 is incomparable with 2.
        assert {row[0] for row in result} == {2, 3}

    def test_empty_result_is_possible(self, engine):
        # "Clearly, an empty result may be possible now, but this
        # correlates with the user's explicit intension!" (section 2.2.4)
        result = engine.execute(
            "SELECT trip_id FROM trips "
            "PREFERRING duration AROUND 100 BUT ONLY DISTANCE(duration) <= 1"
        )
        assert len(result) == 0

    def test_threshold_applies_to_dominators_too(self):
        # A tuple outside the threshold must not shadow in-threshold ones.
        engine = PreferenceEngine(
            {
                "t": Relation(
                    columns=("id", "x", "flag"),
                    rows=[(1, 10, "keep"), (2, 11, "keep"), (3, 10, "drop")],
                )
            }
        )
        result = engine.execute(
            "SELECT id FROM t PREFERRING LOWEST(x) AND flag = 'keep' "
            "BUT ONLY flag = 'keep'"
        )
        assert {row[0] for row in result} == {1}

    def test_level_in_but_only(self, engine):
        result = engine.execute(
            "SELECT ident FROM oldtimer "
            "PREFERRING color = 'white' ELSE color = 'yellow' "
            "BUT ONLY LEVEL(color) <= 2"
        )
        assert {row[0] for row in result} == {"Maggie"}


class TestQualityInSelectList:
    def test_paper_oldtimer_result(self, engine):
        result = engine.execute(
            "SELECT ident, color, age, LEVEL(color), DISTANCE(age) FROM oldtimer "
            "PREFERRING color = 'white' ELSE color = 'yellow' AND age AROUND 40"
        )
        assert set(result.rows) == {
            ("Selma", "red", 40, 3, 0.0),
            ("Homer", "yellow", 35, 2, 5.0),
            ("Maggie", "white", 19, 1, 21.0),
        }

    def test_top_function(self, engine):
        result = engine.execute(
            "SELECT ident, TOP(age) FROM oldtimer PREFERRING age AROUND 40"
        )
        assert result.rows == [("Selma", 1)]

    def test_dynamic_distance_for_highest(self, engine):
        result = engine.execute(
            "SELECT apartment_id, DISTANCE(area) FROM apartments "
            "WHERE city = 'Augsburg' PREFERRING HIGHEST(area)"
        )
        assert set(result.rows) == {(2, 0.0), (3, 0.0)}

    def test_quality_functions_keep_losers_out(self, engine):
        # Quality functions never bring dominated tuples back.
        result = engine.execute(
            "SELECT ident, LEVEL(color) FROM oldtimer "
            "PREFERRING color = 'green'"
        )
        assert result.rows == [("Bart", 1)]


class TestEngineCatalog:
    def test_create_use_drop(self, engine):
        engine.execute("CREATE PREFERENCE veteran ON oldtimer AS HIGHEST(age)")
        result = engine.execute(
            "SELECT ident FROM oldtimer PREFERRING PREFERENCE veteran"
        )
        assert result.rows == [("Skinner",)]
        engine.execute("DROP PREFERENCE veteran")
        with pytest.raises(PreferenceConstructionError):
            engine.execute("SELECT * FROM oldtimer PREFERRING PREFERENCE veteran")

    def test_drop_unknown_raises(self, engine):
        with pytest.raises(PreferenceConstructionError):
            engine.execute("DROP PREFERENCE nope")


class TestBmoFilter:
    def test_direct_use(self):
        preference = build_preference(parse_preferring("LOWEST(a) AND LOWEST(b)"))
        vectors = [(1, 3), (3, 1), (2, 2), (4, 4)]
        assert bmo_filter(preference, vectors) == [0, 1, 2]

    def test_with_threshold(self):
        preference = build_preference(parse_preferring("LOWEST(a) AND LOWEST(b)"))
        vectors = [(1, 3), (3, 1), (2, 2), (4, 4)]
        # Exclude index 0 by threshold; (2,2) is not dominated by (3,1).
        winners = bmo_filter(
            preference, vectors, threshold=lambda i: i != 0
        )
        assert winners == [1, 2]

    def test_with_groups(self):
        preference = build_preference(parse_preferring("LOWEST(a)"))
        vectors = [(1,), (2,), (5,), (4,)]
        winners = bmo_filter(
            preference, vectors, group_keys=["g1", "g1", "g2", "g2"]
        )
        assert winners == [0, 3]

    def test_diagnostics(self, engine):
        diagnosed = engine.execute_select_diagnosed(
            __import__("repro").parse_statement(
                "SELECT * FROM apartments PREFERRING HIGHEST(area) GROUPING city"
            )
        )
        assert diagnosed.candidate_count == 6
        assert diagnosed.group_count == 2
        assert diagnosed.winner_count == 3
