"""Workload generators: determinism and calibration."""

import numpy as np
import pytest

from repro.workloads import (
    CONDITION_SETS,
    POOLS,
    MetaSearch,
    SearchMask,
    anticorrelated,
    benchmark_queries,
    correlated,
    independent,
    jobs_relation,
    load_jobs,
    make_shops,
    mask_to_preference_sql,
    vectors_to_relation,
    washing_machines_relation,
)
from repro.workloads.cosima import make_catalog
from repro.workloads.fixtures import (
    FIXTURES,
    cars_relation,
    oldtimer_relation,
    relation_to_sqlite,
    used_cars_relation,
)
from repro.workloads.jobs import JOB_COLUMNS


class TestFixtures:
    def test_oldtimer_matches_paper(self):
        relation = oldtimer_relation()
        assert len(relation) == 6
        assert ("Selma", "red", 40) in relation.rows

    def test_cars_matches_paper(self):
        relation = cars_relation()
        assert len(relation) == 3
        assert relation.rows[1][1] == "BMW"

    def test_all_fixtures_load_into_sqlite(self, connection):
        from repro.workloads.fixtures import load_fixtures

        load_fixtures(connection)
        for name in FIXTURES:
            count = connection.execute(f"SELECT COUNT(*) FROM {name}").fetchone()
            assert count[0] > 0

    def test_used_cars_deterministic(self):
        assert used_cars_relation(50, seed=1).rows == used_cars_relation(50, seed=1).rows
        assert used_cars_relation(50, seed=1).rows != used_cars_relation(50, seed=2).rows

    def test_used_cars_has_opel_roadsters(self):
        relation = used_cars_relation()
        rows = [r for r in relation.rows if r[1] == "Opel" and r[2] == "roadster"]
        assert rows

    def test_load_fixtures_rejects_unknown_target(self):
        from repro.workloads.fixtures import load_fixtures

        with pytest.raises(TypeError):
            load_fixtures(object())


class TestJobs:
    def test_74_attributes(self):
        assert len(JOB_COLUMNS) == 74

    def test_pools_are_exact(self, connection):
        load_jobs(connection, n=6000, seed=5)
        for label, (region, profession, size) in POOLS.items():
            count = connection.execute(
                "SELECT COUNT(*) FROM jobs WHERE region = ? AND profession = ?",
                (region, profession),
            ).fetchone()[0]
            assert count == size, label

    def test_determinism(self):
        a = jobs_relation(n=4000, seed=9)
        b = jobs_relation(n=4000, seed=9)
        assert a.rows[:50] == b.rows[:50]

    def test_too_small_n_raises(self):
        with pytest.raises(ValueError):
            jobs_relation(n=100)

    def test_query_family_structure(self):
        queries = benchmark_queries("300", "A")
        assert queries.conjunctive.count(" AND ") == 5  # preselect(1) + 4 conds
        assert queries.disjunctive.count(" OR ") == 3
        assert "PREFERRING" in queries.preferring
        assert queries.preferring.count(" AND ") >= 4

    def test_query_family_shapes_on_data(self, connection):
        load_jobs(connection, n=6000, seed=5)
        pool_size = 600
        for condition_set in CONDITION_SETS:
            queries = benchmark_queries("600", condition_set)
            conjunctive = len(connection.execute(queries.conjunctive).fetchall())
            disjunctive = len(connection.execute(queries.disjunctive).fetchall())
            preferring = len(connection.execute(queries.preferring).fetchall())
            # The paper's motivating pathology: conjunctive starves the
            # user, disjunctive floods, Preference SQL returns a small
            # best-matches-only set.
            assert conjunctive <= pool_size * 0.05
            assert disjunctive >= pool_size * 0.3
            assert 1 <= preferring <= 50

    def test_preferring_returns_nondominated_subset(self, connection):
        load_jobs(connection, n=6000, seed=5)
        queries = benchmark_queries("300", "A")
        preferring = connection.execute(queries.preferring).fetchall()
        assert 1 <= len(preferring) <= 50


class TestDistributions:
    def test_shapes_and_ranges(self):
        for generator in (independent, correlated, anticorrelated):
            matrix = generator(500, 4, seed=1)
            assert matrix.shape == (500, 4)
            assert matrix.min() >= 0.0
            assert matrix.max() < 1.0

    def test_determinism(self):
        assert np.array_equal(independent(100, 3, seed=2), independent(100, 3, seed=2))

    def test_correlation_signs(self):
        corr = np.corrcoef(correlated(4000, 2, seed=3).T)[0, 1]
        anti = np.corrcoef(anticorrelated(4000, 2, seed=3).T)[0, 1]
        indep = np.corrcoef(independent(4000, 2, seed=3).T)[0, 1]
        assert corr > 0.5
        assert anti < -0.5
        assert abs(indep) < 0.1

    def test_vectors_to_relation(self):
        relation = vectors_to_relation(independent(10, 3, seed=0))
        assert relation.columns == ("row_id", "d0", "d1", "d2")
        assert len(relation) == 10

    def test_skyline_size_ordering(self):
        # At fixed n and d: correlated < independent < anticorrelated.
        from repro.engine.algorithms import sort_filter_skyline
        from repro.model.builder import build_preference
        from repro.sql.parser import parse_preferring

        preference = build_preference(parse_preferring("LOWEST(a) AND LOWEST(b) AND LOWEST(c)"))
        sizes = {}
        for name, generator in (
            ("correlated", correlated),
            ("independent", independent),
            ("anticorrelated", anticorrelated),
        ):
            matrix = generator(1500, 3, seed=4)
            vectors = [tuple(map(float, row)) for row in matrix]
            sizes[name] = len(sort_filter_skyline(preference, vectors))
        assert sizes["correlated"] < sizes["independent"] < sizes["anticorrelated"]


class TestShop:
    def test_catalog_deterministic(self):
        assert washing_machines_relation(50, seed=1).rows == washing_machines_relation(50, seed=1).rows

    def test_mask_generates_paper_like_query(self):
        mask = SearchMask(
            manufacturer="Aturi",
            width=60,
            spinspeed=1200,
            max_powerconsumption=0.9,
            minimize_waterconsumption=True,
            price_low=1500,
            price_high=2000,
        )
        query = mask_to_preference_sql(mask)
        assert query.startswith("SELECT * FROM products WHERE manufacturer = 'Aturi'")
        assert "width AROUND 60 AND spinspeed AROUND 1200" in query
        assert "powerconsumption BETWEEN 0, 0.9" in query
        assert "LOWEST(waterconsumption)" in query
        assert "price BETWEEN 1500, 2000" in query
        assert "CASCADE" in query

    def test_mask_query_parses_and_runs(self, connection):
        relation_to_sqlite(connection, "products", washing_machines_relation())
        mask = SearchMask(width=60, price_low=1000, price_high=2000)
        rows = connection.execute(mask_to_preference_sql(mask)).fetchall()
        assert rows

    def test_vendor_preferences_appended(self):
        mask = SearchMask(width=60, vendor_preferences=["HIGHEST(price)"])
        query = mask_to_preference_sql(mask)
        assert query.endswith("CASCADE (HIGHEST(price))")

    def test_empty_mask_raises(self):
        with pytest.raises(ValueError):
            mask_to_preference_sql(SearchMask())

    def test_partial_price_range(self):
        low_only = mask_to_preference_sql(SearchMask(price_low=100))
        assert "price BETWEEN 100," in low_only


class TestCosima:
    def test_sessions_deterministic_sizes(self):
        search = MetaSearch(shops=make_shops(2, seed=1), catalog=make_catalog(40, seed=2))
        first = [r.pareto_size for r in search.run_sessions(5)]
        second = [r.pareto_size for r in search.run_sessions(5)]
        assert first == second

    def test_result_invariants(self):
        search = MetaSearch()
        result = search.run_session(7)
        assert 1 <= result.pareto_size <= result.candidate_count
        assert result.shop_seconds > 0
        assert result.preference_seconds >= 0
        assert result.total_seconds >= result.shop_seconds
        assert "PREFERRING" in result.preference_sql

    def test_shops_have_distinct_stock(self):
        catalog = make_catalog(60, seed=1)
        shops = make_shops(2, seed=1)
        rows_a, _lat = shops[0].fetch(catalog, session_seed=1)
        rows_b, _lat = shops[1].fetch(catalog, session_seed=1)
        assert {r[0] for r in rows_a} != {r[0] for r in rows_b}

    def test_latency_is_clipped(self):
        shop = make_shops(1, seed=2)[0]
        _rows, latency = shop.fetch(make_catalog(10, seed=1), session_seed=3)
        assert 0.2 <= latency <= 3.0
