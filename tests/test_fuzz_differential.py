"""Differential fuzzing: every execution path shares one semantics.

The seed's differential suite samples from a fixed list of PREFERRING
clauses; this harness *generates* preference trees — random Pareto /
CASCADE / ELSE compositions over numeric, categorical and EXPLICIT bases,
optionally wrapped in GROUPING, BUT ONLY and named preferences — over
randomized relations, and asserts that the NOT EXISTS rewrite on sqlite,
every serial in-memory algorithm, and the partitioned parallel executor
return identical row multisets.  The in-memory engine remains the
executable specification; any divergence is a bug in one of the paths,
not in the fuzzer.
"""

import random

import hypothesis.strategies as st
from hypothesis import event, given, settings

import repro
from repro.engine import ParallelExecutor, PreferenceEngine, Relation
from repro.plan import STRATEGIES
from repro.workloads.fixtures import relation_to_sqlite

COLUMNS = ("a", "b", "c", "g", "s", "t")

rows_strategy = st.lists(
    st.tuples(
        st.integers(0, 12),  # a
        st.integers(0, 12),  # b
        st.sampled_from(["x", "y", "z", None]),  # c
        st.sampled_from(["p", "q", "r", None]),  # g (GROUPING key)
        st.one_of(st.none(), st.integers(0, 6)),  # s (NULL-bearing numeric)
        st.integers(0, 6),  # t (reserved for the BUT ONLY anchor)
    ),
    min_size=0,
    max_size=22,
)

#: ELSE is restricted to favourite/dislike bases (=, <>, IN, NOT IN) by
#: the dialect, so ELSE chains are generated from categorical bases only
#: and then enter the general tree grammar as opaque leaves.
_CATEGORICAL = st.sampled_from(
    ["c = 'x'", "c <> 'y'", "c IN ('x', 'y')", "c NOT IN ('z')"]
)

_ELSE_CHAINS = st.recursive(
    _CATEGORICAL,
    lambda children: st.builds(
        lambda left, right: f"({left}) ELSE ({right})", children, children
    ),
    max_leaves=3,
)

_BASES = st.one_of(
    st.sampled_from(
        [
            "LOWEST(a)",
            "HIGHEST(b)",
            "a AROUND 6",
            "b BETWEEN 3, 9",
            "s AROUND 2",
            "HIGHEST(s)",
            "EXPLICIT(c, 'x' > 'y', 'y' > 'z')",
        ]
    ),
    _CATEGORICAL,
    _ELSE_CHAINS,
)


def _compose(children):
    return st.builds(
        lambda left, right, op: f"({left}) {op} ({right})",
        children,
        children,
        st.sampled_from(["AND", "CASCADE"]),
    )


trees_strategy = st.recursive(_BASES, _compose, max_leaves=4)


def all_paths(rows, query, setup=()):
    """Run one query through every execution path; return the row sets.

    ``setup`` statements (CREATE PREFERENCE ...) run on both the engine
    and the driver connection before the query.
    """
    relation = Relation(columns=COLUMNS, rows=rows)
    engine = PreferenceEngine({"items": relation})
    for statement in setup:
        engine.execute(statement)
    results = {"engine": sorted(engine.execute(query).rows, key=repr)}

    # The driver's executor keeps the default 64-row partitioning gate,
    # which these small relations never cross — force tiny partitions so
    # every fuzzed tree also exercises hash-partition + merge-filter.
    with ParallelExecutor(max_workers=2, min_partition_rows=4) as executor:
        partitioned = PreferenceEngine(
            {"items": relation}, algorithm="parallel", executor=executor
        )
        for statement in setup:
            partitioned.execute(statement)
        results["partitioned"] = sorted(
            partitioned.execute(query).rows, key=repr
        )

    connection = repro.connect(":memory:")
    try:
        relation_to_sqlite(connection, "items", relation)
        for statement in setup:
            connection.execute(statement)
        results["auto"] = sorted(connection.execute(query).fetchall(), key=repr)
        for strategy in STRATEGIES:
            results[strategy] = sorted(
                connection.execute(query, algorithm=strategy).fetchall(),
                key=repr,
            )
    finally:
        connection.close()
    return results


def assert_identical(results, query):
    baseline = results["engine"]
    for path, rows in results.items():
        assert rows == baseline, f"{path} diverges on: {query}"


@given(rows=rows_strategy, tree=trees_strategy)
@settings(max_examples=60, deadline=None)
def test_random_trees_agree_on_all_paths(rows, tree):
    query = f"SELECT * FROM items PREFERRING {tree}"
    assert_identical(all_paths(rows, query), query)


@given(rows=rows_strategy, tree=trees_strategy, data=st.data())
@settings(max_examples=40, deadline=None)
def test_random_trees_with_where_and_grouping(rows, tree, data):
    where = data.draw(
        st.sampled_from([None, "a <= 8", "c IS NOT NULL", "b > 2 AND a < 11"])
    )
    grouping = data.draw(st.sampled_from(["", " GROUPING g", " GROUPING g, c"]))
    query = "SELECT * FROM items"
    if where:
        query += f" WHERE {where}"
    query += f" PREFERRING {tree}{grouping}"
    assert_identical(all_paths(rows, query), query)


@given(rows=rows_strategy, tree=trees_strategy, data=st.data())
@settings(max_examples=30, deadline=None)
def test_random_trees_with_but_only(rows, tree, data):
    # Anchor an AROUND base on column t — which the tree grammar never
    # references — so the quality-function threshold resolves unambiguously
    # regardless of what the random tree contains.
    threshold = data.draw(
        st.sampled_from(["DISTANCE(t) <= 2", "DISTANCE(t) <= 0", "TOP(t) = 1"])
    )
    grouping = data.draw(st.sampled_from(["", " GROUPING g"]))
    query = (
        f"SELECT * FROM items PREFERRING t AROUND 3 AND ({tree})"
        f"{grouping} BUT ONLY {threshold}"
    )
    assert_identical(all_paths(rows, query), query)


# ----------------------------------------------------------------------
# DML-interleaving view maintenance fuzzing
#
# A materialized preference view must equal a fresh recompute after
# *every* DML statement, across every planner strategy.  The ops below
# deliberately mix plain INSERT/DELETE/UPDATE with comment-prefixed and
# CTE-prefixed spellings, so the driver's interception scanner is fuzzed
# alongside the maintenance engine.


def _literal(value):
    if value is None:
        return "NULL"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)


_INSERT_PREFIXES = st.sampled_from(["", "-- load\n", "/* batch */ "])

_insert_ops = st.builds(
    lambda row, prefix: prefix
    + "INSERT INTO items VALUES ("
    + ", ".join(_literal(value) for value in row)
    + ")",
    rows_strategy.map(lambda rows: rows[0] if rows else (1, 1, "x", "p", 0, 1)),
    _INSERT_PREFIXES,
)

_DELETE_PREDICATES = st.sampled_from(
    ["a > 8", "b <= 3", "c = 'x'", "g = 'p'", "s IS NULL", "a = 5", "t >= 2"]
)

_delete_ops = st.builds(
    lambda predicate, cte: (
        f"WITH doomed AS (SELECT 1 AS one) DELETE FROM items WHERE {predicate}"
        if cte
        else f"DELETE FROM items WHERE {predicate}"
    ),
    _DELETE_PREDICATES,
    st.booleans(),
)

_update_ops = st.builds(
    lambda assignment, predicate: f"UPDATE items SET {assignment} WHERE {predicate}",
    st.sampled_from(
        ["a = 0", "b = 12", "c = 'z'", "s = NULL", "a = a + 3", "g = 'q'"]
    ),
    st.sampled_from(["a < 4", "g = 'q'", "c = 'y'", "b > 6", "t = 3"]),
)

dml_ops_strategy = st.lists(
    st.one_of(_insert_ops, _delete_ops, _update_ops), min_size=1, max_size=5
)


def _view_connection(rows, view_query):
    # Explicit column types: an empty initial relation must not leave
    # the table with TEXT affinity everywhere, or later DML would store
    # numbers as strings and leave the comparison semantics undefined.
    connection = repro.connect(":memory:")
    connection.execute(
        "CREATE TABLE items (a INTEGER, b INTEGER, c TEXT, g TEXT, "
        "s INTEGER, t INTEGER)"
    )
    if rows:
        connection.cursor().executemany(
            "INSERT INTO items VALUES (?, ?, ?, ?, ?, ?)", rows
        )
    connection.execute(f"CREATE PREFERENCE VIEW fuzzview AS {view_query}")
    return connection


def _assert_view_fresh(connection, view_query, context):
    materialized = sorted(
        connection.raw.execute("SELECT * FROM fuzzview").fetchall(), key=repr
    )
    for strategy in STRATEGIES:
        fresh = sorted(
            connection.execute(view_query, algorithm=strategy).fetchall(),
            key=repr,
        )
        assert materialized == fresh, (
            f"view diverges from {strategy} recompute after: {context}"
        )
    # The planner must answer the matching query from the (fresh) view.
    cursor = connection.execute(view_query)
    assert cursor.plan is not None and cursor.plan.strategy == "view", context
    assert sorted(cursor.fetchall(), key=repr) == materialized, context


@given(rows=rows_strategy, tree=trees_strategy, ops=dml_ops_strategy, data=st.data())
@settings(max_examples=120, deadline=None)
def test_view_maintenance_tracks_random_dml(rows, tree, ops, data):
    where = data.draw(st.sampled_from(["", " WHERE a <= 10", " WHERE c IS NOT NULL"]))
    grouping = data.draw(st.sampled_from(["", " GROUPING g", " GROUPING g, c"]))
    view_query = f"SELECT * FROM items{where} PREFERRING {tree}{grouping}"
    connection = _view_connection(rows, view_query)
    try:
        _assert_view_fresh(connection, view_query, "CREATE PREFERENCE VIEW")
        for op in ops:
            connection.execute(op)
            _assert_view_fresh(connection, view_query, op)
    finally:
        connection.close()


@given(rows=rows_strategy, tree=trees_strategy, ops=dml_ops_strategy, data=st.data())
@settings(max_examples=80, deadline=None)
def test_recompute_fallback_views_track_random_dml(rows, tree, ops, data):
    # BUT ONLY thresholds make the view unmaintainable: every DML must
    # trigger the flagged full recompute and still match the oracle.
    threshold = data.draw(st.sampled_from(["DISTANCE(t) <= 2", "TOP(t) = 1"]))
    view_query = (
        f"SELECT * FROM items PREFERRING t AROUND 3 AND ({tree}) "
        f"BUT ONLY {threshold}"
    )
    connection = _view_connection(rows, view_query)
    try:
        entry = connection.views()[0]
        assert not entry.maintainable
        for op in ops:
            connection.execute(op)
            _assert_view_fresh(connection, view_query, op)
        stats = connection.view_maintenance_stats()["fuzzview"]
        assert "incremental" not in stats and "re-derive" not in stats
    finally:
        connection.close()


# ----------------------------------------------------------------------
# Multi-table join fuzzing
#
# PR 5 makes joins first-class in-memory citizens: the pushdown executes
# the join on the host database and the engine winnows the joined rows,
# and — where Chomicki's commute conditions hold — the winnow pushdown
# computes the BMO set *before* the join.  Every FROM spelling (comma
# list and explicit JOIN … ON), every strategy and the pushdown must
# return the winner set of the NOT EXISTS rewrite (the oracle).

FACT_COLUMNS = ("fa", "fb", "fk", "fc")
DIM_COLUMNS = ("dk", "dw", "dname")

fact_rows_strategy = st.lists(
    st.tuples(
        st.integers(0, 10),  # fa
        st.integers(0, 10),  # fb
        st.integers(0, 5),  # fk (join key)
        st.sampled_from(["x", "y", "z", None]),  # fc
    ),
    min_size=0,
    max_size=14,
)

#: Unique dk per row gives many-to-one joins; repeated dk values (drawn
#: independently) give many-to-many shapes.  Keys outside the fact range
#: leave dangling rows on both sides.
dim_rows_strategy = st.lists(
    st.tuples(
        st.integers(0, 6),  # dk (join key)
        st.integers(0, 8),  # dw
        st.sampled_from(["p", "q", "r"]),  # dname
    ),
    min_size=0,
    max_size=8,
)

_JOIN_BASES = st.sampled_from(
    [
        "LOWEST(f.fa)",
        "HIGHEST(f.fb)",
        "f.fa AROUND 5",
        "f.fb BETWEEN 2, 7",
        "f.fc = 'x'",
        "HIGHEST(d.dw)",
        "d.dname IN ('p', 'q')",
    ]
)

join_trees_strategy = st.recursive(_JOIN_BASES, _compose, max_leaves=3)

_JOIN_WHERE = st.sampled_from(
    [None, "f.fa <= 8", "d.dw > 1", "f.fb > 2 AND d.dw < 7"]
)

_JOIN_GROUPING = st.sampled_from(["", " GROUPING f.fc", " GROUPING d.dname"])


def _join_connection(fact_rows, dim_rows):
    connection = repro.connect(":memory:")
    connection.execute(
        "CREATE TABLE fact (fa INTEGER, fb INTEGER, fk INTEGER, fc TEXT)"
    )
    connection.execute(
        "CREATE TABLE dim (dk INTEGER, dw INTEGER, dname TEXT)"
    )
    if fact_rows:
        connection.cursor().executemany(
            "INSERT INTO fact VALUES (?, ?, ?, ?)", fact_rows
        )
    if dim_rows:
        connection.cursor().executemany(
            "INSERT INTO dim VALUES (?, ?, ?)", dim_rows
        )
    return connection


def _assert_join_paths_agree(connection, queries):
    """All FROM spellings x all strategies return the oracle's rows."""
    oracle = None
    for query in queries:
        for strategy in STRATEGIES:
            rows = sorted(
                connection.execute(query, algorithm=strategy).fetchall(),
                key=repr,
            )
            if oracle is None:
                oracle = rows
            assert rows == oracle, f"{strategy} diverges on: {query}"
        # The winnow pushdown applies only under Chomicki's conditions;
        # force it where the planner proved them, and let auto pick.
        if connection.plan(query).winnow_pushdown.startswith("yes"):
            rows = sorted(
                connection.execute(query, algorithm="prejoin").fetchall(),
                key=repr,
            )
            assert rows == oracle, f"prejoin diverges on: {query}"
        rows = sorted(connection.execute(query).fetchall(), key=repr)
        assert rows == oracle, f"auto diverges on: {query}"


@given(
    fact_rows=fact_rows_strategy,
    dim_rows=dim_rows_strategy,
    tree=join_trees_strategy,
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_join_queries_agree_on_all_paths(fact_rows, dim_rows, tree, data):
    where = data.draw(_JOIN_WHERE)
    grouping = data.draw(_JOIN_GROUPING)
    tail = f" PREFERRING {tree}{grouping}"
    comma_where = "f.fk = d.dk" + (f" AND ({where})" if where else "")
    comma = f"SELECT * FROM fact f, dim d WHERE {comma_where}{tail}"
    joined = "SELECT * FROM fact f JOIN dim d ON f.fk = d.dk"
    if where:
        joined += f" WHERE {where}"
    joined += tail
    connection = _join_connection(fact_rows, dim_rows)
    try:
        _assert_join_paths_agree(connection, (comma, joined))
    finally:
        connection.close()


@given(
    fact_rows=fact_rows_strategy,
    dim_rows=dim_rows_strategy,
    tree=join_trees_strategy,
)
@settings(max_examples=20, deadline=None)
def test_three_table_joins_agree_on_all_paths(fact_rows, dim_rows, tree):
    query = (
        "SELECT * FROM fact f, dim d, grp g "
        "WHERE f.fk = d.dk AND d.dname = g.gname "
        f"PREFERRING {tree}"
    )
    connection = _join_connection(fact_rows, dim_rows)
    try:
        connection.execute("CREATE TABLE grp (gname TEXT, gv INTEGER)")
        connection.cursor().executemany(
            "INSERT INTO grp VALUES (?, ?)", [("p", 1), ("q", 2), ("q", 3)]
        )
        _assert_join_paths_agree(connection, (query,))
    finally:
        connection.close()


# ----------------------------------------------------------------------
# Constraint-aware semantic-rewrite fuzzing
#
# PR 6 adds the constraint catalog and the semantic winnow rewrites;
# the default planner may now replace a winnow with a plain selection
# or a single ordered scan when constraints prove it sound.  These
# cases generate tables *with* constraints — declared ones are derived
# from the generated data, so they never lie — let the planner apply
# whatever rule it can prove, and assert the winner multiset is
# identical to the nested-loop oracle and to every forced strategy.
# Negative cases assert a rule must NOT fire when a precondition
# (NOT NULL proof, provable weak order) is missing.

sem_rows_strategy = st.lists(
    st.tuples(
        st.integers(0, 4),  # u
        st.integers(0, 9),  # v
        st.one_of(st.none(), st.integers(0, 6)),  # w (NULL-bearing)
        st.sampled_from(["x", "y", "z", None]),  # c
    ),
    min_size=0,
    max_size=16,
).map(lambda rows: [(index,) + row for index, row in enumerate(rows)])

_SEM_BASES = st.sampled_from(
    [
        "LOWEST(u)",
        "HIGHEST(v)",
        "u AROUND 2",
        "v BETWEEN 3, 7",
        "LOWEST(w)",
        "HIGHEST(k)",
        "c = 'x'",
        "c IN ('x', 'y')",
        "(c = 'x') ELSE (c = 'z')",
        "EXPLICIT(c, 'x' > 'y', 'y' > 'z')",
    ]
)

sem_trees_strategy = st.recursive(_SEM_BASES, _compose, max_leaves=4)

_SEM_WHERE = st.sampled_from(
    [None, "k = 2", "u = 1", "u = 1 AND v = 5", "w IS NOT NULL", "v > 3"]
)


def _sem_connection(rows, data):
    """A driver connection over a constrained table.

    ``k`` is the enumeration index, so KEY (k) and FD (k) DETERMINES …
    are true by construction; NOT NULL (w) is only declared when the
    generated rows actually satisfy it.
    """
    schema_pk = data.draw(st.booleans(), label="schema_pk")
    connection = repro.connect(":memory:")
    key_type = "INTEGER PRIMARY KEY" if schema_pk else "INTEGER"
    connection.execute(
        f"CREATE TABLE items (k {key_type}, u INTEGER NOT NULL, "
        "v INTEGER NOT NULL, w INTEGER, "
        "c TEXT CHECK (c IN ('x', 'y', 'z')))"
    )
    if rows:
        connection.cursor().executemany(
            "INSERT INTO items VALUES (?, ?, ?, ?, ?)", rows
        )
    if data.draw(st.booleans(), label="declare_key"):
        connection.execute(
            "CREATE PREFERENCE CONSTRAINT sem_key ON items KEY (k)"
        )
    if data.draw(st.booleans(), label="declare_not_null"):
        connection.execute(
            "CREATE PREFERENCE CONSTRAINT sem_nn ON items NOT NULL (u, v)"
        )
    if all(row[3] is not None for row in rows) and data.draw(
        st.booleans(), label="declare_w_not_null"
    ):
        connection.execute(
            "CREATE PREFERENCE CONSTRAINT sem_wnn ON items NOT NULL (w)"
        )
    if data.draw(st.booleans(), label="declare_fd"):
        connection.execute(
            "CREATE PREFERENCE CONSTRAINT sem_fd ON items "
            "FD (k) DETERMINES (u, v, c)"
        )
    return connection


def _assert_semantic_paths_agree(connection, query):
    """Default planning (semantic may fire) vs oracle vs every strategy."""
    oracle = sorted(
        connection.execute(query, algorithm="bnl").fetchall(), key=repr
    )
    for strategy in STRATEGIES:
        rows = sorted(
            connection.execute(query, algorithm=strategy).fetchall(), key=repr
        )
        assert rows == oracle, f"{strategy} diverges on: {query}"
    cursor = connection.execute(query)
    rows = sorted(cursor.fetchall(), key=repr)
    assert rows == oracle, f"semantic/auto diverges on: {query}"
    return cursor.plan


@given(rows=sem_rows_strategy, tree=sem_trees_strategy, data=st.data())
@settings(max_examples=120, deadline=None)
def test_constrained_tables_agree_with_oracle(rows, tree, data):
    where = data.draw(_SEM_WHERE)
    grouping = data.draw(st.sampled_from(["", " GROUPING c"]))
    query = "SELECT * FROM items"
    if where:
        query += f" WHERE {where}"
    query += f" PREFERRING {tree}{grouping}"
    connection = _sem_connection(rows, data)
    try:
        plan = _assert_semantic_paths_agree(connection, query)
        rule = plan.semantic_rule if plan is not None else None
        event(f"semantic: {rule or 'none'}")
    finally:
        connection.close()


@given(rows=sem_rows_strategy, data=st.data())
@settings(max_examples=40, deadline=None)
def test_single_pass_must_not_fire_when_nulls_present(rows, data):
    # at least one NULL in w, and no WHERE to pin anything: the only
    # applicable rule would be the weak-order single pass, whose NOT
    # NULL precondition is unprovable — it must stay off.
    rows = rows + [(len(rows), 0, 0, None, "x")]
    query = "SELECT * FROM items PREFERRING LOWEST(w)"
    connection = _sem_connection(rows, data)
    try:
        plan = _assert_semantic_paths_agree(connection, query)
        assert plan is not None
        assert plan.semantic_rule is None, plan.semantic_rule
    finally:
        connection.close()


@given(rows=sem_rows_strategy, tree=sem_trees_strategy, data=st.data())
@settings(max_examples=40, deadline=None)
def test_semantic_must_not_fire_on_unprovable_pareto(rows, tree, data):
    # a top-level Pareto of two live dimensions with no WHERE pins:
    # nothing is constant and the tree is not a weak order, so no rule's
    # preconditions hold.
    query = f"SELECT * FROM items PREFERRING (LOWEST(u) AND HIGHEST(v)) AND ({tree})"
    connection = _sem_connection(rows, data)
    try:
        plan = _assert_semantic_paths_agree(connection, query)
        assert plan is not None
        assert plan.semantic_rule is None, plan.semantic_rule
    finally:
        connection.close()


# ----------------------------------------------------------------------
# Query-sequence session fuzzing
#
# PR 7 adds session-level reuse: a refined query may be answered by
# re-winnowing cached BMO winners instead of rescanning.  These sequences
# model one user session — provable refinements (cascade tie-breakers,
# WHERE weakening, grouping-column strengthening), deliberate
# non-refinements (relaxations, dimension swaps) and interleaved DML —
# and assert EVERY step returns exactly the rows of (a) a fresh
# connection with session reuse disabled and (b) the nested-loop oracle.
# The oracle is O(n^2), so it runs on every step of the small sessions
# and is skipped on the large ones (whose scans exist to make the cost
# model actually choose the session strategy); the fresh-connection
# comparison still covers every step.  A floor on the aggregate ``served``
# counter proves the machinery fired rather than silently falling back.

CARS_COLUMNS = ("id", "price", "mileage", "fuel", "make")
_MAKES = ("vw", "opel", "bmw", "audi")
_FUELS = ("diesel", "petrol", "hybrid")

_SESSION_COUNT = 200
_LARGE_EVERY = 10  # every 10th session is big enough for session reuse


def _cars_rows(rng, count):
    return [
        (
            i,
            rng.randrange(5000, 90000),
            rng.choice([None, rng.randrange(0, 300000)])
            if rng.random() < 0.05
            else rng.randrange(0, 300000),
            rng.choice(_FUELS),
            rng.choice(_MAKES),
        )
        for i in range(count)
    ]


def _cars_connection(rows):
    connection = repro.connect(":memory:")
    connection.execute(
        "CREATE TABLE cars (id INTEGER, price INTEGER, mileage INTEGER, "
        "fuel TEXT, make TEXT)"
    )
    if rows:
        connection.cursor().executemany(
            "INSERT INTO cars VALUES (?, ?, ?, ?, ?)", rows
        )
    connection.execute("ANALYZE")
    return connection


def _session_query(state):
    sql = "SELECT * FROM cars"
    if state["where"]:
        sql += " WHERE " + " AND ".join(state["where"])
    sql += " PREFERRING " + state["pref"]
    for tie in state["cascade"]:
        sql += f" CASCADE {tie}"
    if state["grouping"]:
        sql += " GROUPING fuel"
    return sql


def _oracle_rows(connection, query):
    data = [
        tuple(row)
        for row in connection.raw.execute(
            "SELECT id, price, mileage, fuel, make FROM cars"
        ).fetchall()
    ]
    engine = PreferenceEngine(
        {"cars": Relation(columns=CARS_COLUMNS, rows=data)},
        algorithm="nested_loop",
    )
    return sorted(engine.execute(query).rows, key=repr)


def _session_steps(rng, state, large):
    """Plan one session: a list of ('query', sql) / ('dml', sql) steps."""
    ties = [
        f"make IN ('{make}')" for make in rng.sample(_MAKES, 2)
    ] + [f"fuel IN ('{rng.choice(_FUELS)}')"]
    steps = []
    count = rng.randint(3, 8)
    for position in range(count):
        choices = ["cascade", "swap", "dml", "relax", "weaken", "strengthen"]
        if large and position == 0:
            op = "cascade"  # guarantee one provable refinement per big scan
        else:
            op = rng.choice(choices)
        if op == "cascade" and ties:
            state["cascade"].append(ties.pop(0))
            steps.append(("query", _session_query(state)))
        elif op == "relax" and state["cascade"]:
            state["cascade"].pop()
            steps.append(("query", _session_query(state)))
        elif op == "weaken" and state["where"]:
            state["where"].pop(rng.randrange(len(state["where"])))
            steps.append(("query", _session_query(state)))
        elif op == "strengthen" and state["grouping"] and not any(
            "fuel" in conjunct for conjunct in state["where"]
        ):
            state["where"].append(f"fuel IN ('{rng.choice(_FUELS)}')")
            steps.append(("query", _session_query(state)))
        elif op == "swap":
            swapped = dict(state, pref="HIGHEST(price) AND HIGHEST(mileage)")
            steps.append(("swap", _session_query(swapped)))
        elif op == "dml":
            steps.append(
                (
                    "dml",
                    rng.choice(
                        [
                            "INSERT INTO cars VALUES ({}, {}, {}, '{}', '{}')".format(
                                9000 + position,
                                rng.randrange(1, 90000),
                                rng.randrange(0, 300000),
                                rng.choice(_FUELS),
                                rng.choice(_MAKES),
                            ),
                            "UPDATE cars SET price = price + 100 "
                            f"WHERE make = '{rng.choice(_MAKES)}'",
                            f"DELETE FROM cars WHERE id % 11 = {rng.randrange(11)}",
                        ]
                    ),
                )
            )
        else:
            steps.append(("query", _session_query(state)))
    return steps


def _run_session(seed):
    """One fuzzed session; returns this session's ``served`` count."""
    rng = random.Random(77000 + seed)
    large = seed % _LARGE_EVERY == 0
    rows = _cars_rows(rng, rng.randint(1100, 1400) if large else rng.randint(20, 80))
    state = {
        "pref": "LOWEST(price) AND LOWEST(mileage)",
        "cascade": [],
        "where": [],
        "grouping": False,
    }
    if not large:
        if rng.random() < 0.4:
            state["grouping"] = True
        if rng.random() < 0.4:
            state["where"].append("price < 60000")
    base = _session_query(state)
    steps = [("query", base)] + _session_steps(rng, state, large)

    live = _cars_connection(rows)
    fresh = _cars_connection(rows)
    fresh.session_reuse = False
    seen_since_write = set()
    try:
        for kind, sql in steps:
            if kind == "dml":
                live.execute(sql)
                fresh.execute(sql)
                seen_since_write.clear()
                continue
            cursor = live.execute(sql)
            got = sorted(cursor.fetchall(), key=repr)
            expected = sorted(fresh.execute(sql).fetchall(), key=repr)
            assert got == expected, f"session diverges from fresh eval on: {sql}"
            if not large:
                assert got == _oracle_rows(fresh, sql), (
                    f"session diverges from nested-loop oracle on: {sql}"
                )
            if kind == "swap" and sql not in seen_since_write:
                # A dimension swap refines nothing in the cache; it must
                # never be answered from stored winners.
                assert (
                    cursor.plan is None or cursor.plan.strategy != "session"
                ), f"non-refinement served from session cache: {sql}"
            seen_since_write.add(sql)
        return live.session_stats()["served"]
    finally:
        live.close()
        fresh.close()


def test_query_sequences_match_oracle_and_fresh_evaluation():
    served = sum(_run_session(seed) for seed in range(_SESSION_COUNT))
    # Every large session opens with scan + provable cascade refinement;
    # if the session strategy never won, reuse has silently regressed.
    assert served >= _SESSION_COUNT // _LARGE_EVERY, served


@given(rows=rows_strategy, tree=trees_strategy, data=st.data())
@settings(max_examples=30, deadline=None)
def test_named_preferences_agree_on_all_paths(rows, tree, data):
    setup = (f"CREATE PREFERENCE fuzzed ON items AS {tree}",)
    use = data.draw(
        st.sampled_from(
            [
                "PREFERENCE fuzzed",
                "PREFERENCE fuzzed AND LOWEST(a)",
                "(PREFERENCE fuzzed) CASCADE HIGHEST(b)",
            ]
        )
    )
    grouping = data.draw(st.sampled_from(["", " GROUPING g"]))
    query = f"SELECT * FROM items PREFERRING {use}{grouping}"
    assert_identical(all_paths(rows, query, setup=setup), query)


# ----------------------------------------------------------------------
# Concurrent pool stress (PR 8)
#
# The serving layer hands pooled connections to many threads while DML
# arrives between bursts.  Rounds alternate a write phase (one thread,
# random DML through the pool) with a read phase (N threads hammering the
# pool with the full query mix); every response in a read phase must be
# row-identical to a fresh standalone connection evaluating the same
# query against the same database state.

_STRESS_QUERIES = (
    "SELECT * FROM cars PREFERRING LOWEST(price) AND LOWEST(mileage)",
    "SELECT * FROM cars PREFERRING LOWEST(price) AND LOWEST(mileage) "
    "CASCADE fuel IN ('diesel')",
    "SELECT * FROM cars WHERE price < 60000 "
    "PREFERRING HIGHEST(price) AND HIGHEST(mileage) GROUPING fuel",
    "SELECT * FROM cars PREFERRING LOWEST(mileage) CASCADE LOWEST(price)",
    "SELECT COUNT(*) FROM cars",
)


def _stress_dml(rng, position):
    return rng.choice(
        [
            "INSERT INTO cars VALUES ({}, {}, {}, '{}', '{}')".format(
                7000 + position,
                rng.randrange(1, 90000),
                rng.randrange(0, 300000),
                rng.choice(_FUELS),
                rng.choice(_MAKES),
            ),
            f"UPDATE cars SET price = price + 250 "
            f"WHERE make = '{rng.choice(_MAKES)}'",
            f"DELETE FROM cars WHERE id % 13 = {rng.randrange(13)}",
        ]
    )


def test_concurrent_pool_with_interleaved_dml_matches_fresh(tmp_path):
    import threading

    from repro.server import ConnectionPool

    rng = random.Random(88)
    database = str(tmp_path / "stress.db")
    setup = repro.connect(database)
    setup.execute(
        "CREATE TABLE cars (id INTEGER, price INTEGER, mileage INTEGER, "
        "fuel TEXT, make TEXT)"
    )
    setup.cursor().executemany(
        "INSERT INTO cars VALUES (?, ?, ?, ?, ?)", _cars_rows(rng, 300)
    )
    setup.commit()
    setup.execute("ANALYZE")
    setup.close()

    pool = ConnectionPool(database, size=3)
    workers = 6
    failures: list[str] = []
    try:
        for round_number in range(5):
            # Write phase: DML through the pool, one statement per round.
            with pool.connection() as writer:
                writer.execute(_stress_dml(rng, round_number))

            # The expected answer set for this round's database state.
            fresh = repro.connect(database)
            fresh.session_reuse = False
            expected = {
                sql: sorted(fresh.execute(sql).fetchall(), key=repr)
                for sql in _STRESS_QUERIES
            }
            fresh.close()

            barrier = threading.Barrier(workers)

            def read_burst():
                try:
                    barrier.wait(timeout=10)
                    for sql in _STRESS_QUERIES:
                        with pool.connection() as connection:
                            got = sorted(
                                connection.execute(sql).fetchall(), key=repr
                            )
                        if got != expected[sql]:
                            failures.append(
                                f"round {round_number} diverges on: {sql}"
                            )
                except Exception as error:  # pragma: no cover - failure path
                    failures.append(f"round {round_number}: {error!r}")

            threads = [
                threading.Thread(target=read_burst) for _ in range(workers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert failures == []
    finally:
        pool.close()
