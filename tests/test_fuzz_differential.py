"""Differential fuzzing: every execution path shares one semantics.

The seed's differential suite samples from a fixed list of PREFERRING
clauses; this harness *generates* preference trees — random Pareto /
CASCADE / ELSE compositions over numeric, categorical and EXPLICIT bases,
optionally wrapped in GROUPING, BUT ONLY and named preferences — over
randomized relations, and asserts that the NOT EXISTS rewrite on sqlite,
every serial in-memory algorithm, and the partitioned parallel executor
return identical row multisets.  The in-memory engine remains the
executable specification; any divergence is a bug in one of the paths,
not in the fuzzer.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

import repro
from repro.engine import ParallelExecutor, PreferenceEngine, Relation
from repro.plan import STRATEGIES
from repro.workloads.fixtures import relation_to_sqlite

COLUMNS = ("a", "b", "c", "g", "s", "t")

rows_strategy = st.lists(
    st.tuples(
        st.integers(0, 12),  # a
        st.integers(0, 12),  # b
        st.sampled_from(["x", "y", "z", None]),  # c
        st.sampled_from(["p", "q", "r", None]),  # g (GROUPING key)
        st.one_of(st.none(), st.integers(0, 6)),  # s (NULL-bearing numeric)
        st.integers(0, 6),  # t (reserved for the BUT ONLY anchor)
    ),
    min_size=0,
    max_size=22,
)

#: ELSE is restricted to favourite/dislike bases (=, <>, IN, NOT IN) by
#: the dialect, so ELSE chains are generated from categorical bases only
#: and then enter the general tree grammar as opaque leaves.
_CATEGORICAL = st.sampled_from(
    ["c = 'x'", "c <> 'y'", "c IN ('x', 'y')", "c NOT IN ('z')"]
)

_ELSE_CHAINS = st.recursive(
    _CATEGORICAL,
    lambda children: st.builds(
        lambda left, right: f"({left}) ELSE ({right})", children, children
    ),
    max_leaves=3,
)

_BASES = st.one_of(
    st.sampled_from(
        [
            "LOWEST(a)",
            "HIGHEST(b)",
            "a AROUND 6",
            "b BETWEEN 3, 9",
            "s AROUND 2",
            "HIGHEST(s)",
            "EXPLICIT(c, 'x' > 'y', 'y' > 'z')",
        ]
    ),
    _CATEGORICAL,
    _ELSE_CHAINS,
)


def _compose(children):
    return st.builds(
        lambda left, right, op: f"({left}) {op} ({right})",
        children,
        children,
        st.sampled_from(["AND", "CASCADE"]),
    )


trees_strategy = st.recursive(_BASES, _compose, max_leaves=4)


def all_paths(rows, query, setup=()):
    """Run one query through every execution path; return the row sets.

    ``setup`` statements (CREATE PREFERENCE ...) run on both the engine
    and the driver connection before the query.
    """
    relation = Relation(columns=COLUMNS, rows=rows)
    engine = PreferenceEngine({"items": relation})
    for statement in setup:
        engine.execute(statement)
    results = {"engine": sorted(engine.execute(query).rows, key=repr)}

    # The driver's executor keeps the default 64-row partitioning gate,
    # which these small relations never cross — force tiny partitions so
    # every fuzzed tree also exercises hash-partition + merge-filter.
    with ParallelExecutor(max_workers=2, min_partition_rows=4) as executor:
        partitioned = PreferenceEngine(
            {"items": relation}, algorithm="parallel", executor=executor
        )
        for statement in setup:
            partitioned.execute(statement)
        results["partitioned"] = sorted(
            partitioned.execute(query).rows, key=repr
        )

    connection = repro.connect(":memory:")
    try:
        relation_to_sqlite(connection, "items", relation)
        for statement in setup:
            connection.execute(statement)
        results["auto"] = sorted(connection.execute(query).fetchall(), key=repr)
        for strategy in STRATEGIES:
            results[strategy] = sorted(
                connection.execute(query, algorithm=strategy).fetchall(),
                key=repr,
            )
    finally:
        connection.close()
    return results


def assert_identical(results, query):
    baseline = results["engine"]
    for path, rows in results.items():
        assert rows == baseline, f"{path} diverges on: {query}"


@given(rows=rows_strategy, tree=trees_strategy)
@settings(max_examples=60, deadline=None)
def test_random_trees_agree_on_all_paths(rows, tree):
    query = f"SELECT * FROM items PREFERRING {tree}"
    assert_identical(all_paths(rows, query), query)


@given(rows=rows_strategy, tree=trees_strategy, data=st.data())
@settings(max_examples=40, deadline=None)
def test_random_trees_with_where_and_grouping(rows, tree, data):
    where = data.draw(
        st.sampled_from([None, "a <= 8", "c IS NOT NULL", "b > 2 AND a < 11"])
    )
    grouping = data.draw(st.sampled_from(["", " GROUPING g", " GROUPING g, c"]))
    query = "SELECT * FROM items"
    if where:
        query += f" WHERE {where}"
    query += f" PREFERRING {tree}{grouping}"
    assert_identical(all_paths(rows, query), query)


@given(rows=rows_strategy, tree=trees_strategy, data=st.data())
@settings(max_examples=30, deadline=None)
def test_random_trees_with_but_only(rows, tree, data):
    # Anchor an AROUND base on column t — which the tree grammar never
    # references — so the quality-function threshold resolves unambiguously
    # regardless of what the random tree contains.
    threshold = data.draw(
        st.sampled_from(["DISTANCE(t) <= 2", "DISTANCE(t) <= 0", "TOP(t) = 1"])
    )
    grouping = data.draw(st.sampled_from(["", " GROUPING g"]))
    query = (
        f"SELECT * FROM items PREFERRING t AROUND 3 AND ({tree})"
        f"{grouping} BUT ONLY {threshold}"
    )
    assert_identical(all_paths(rows, query), query)


@given(rows=rows_strategy, tree=trees_strategy, data=st.data())
@settings(max_examples=30, deadline=None)
def test_named_preferences_agree_on_all_paths(rows, tree, data):
    setup = (f"CREATE PREFERENCE fuzzed ON items AS {tree}",)
    use = data.draw(
        st.sampled_from(
            [
                "PREFERENCE fuzzed",
                "PREFERENCE fuzzed AND LOWEST(a)",
                "(PREFERENCE fuzzed) CASCADE HIGHEST(b)",
            ]
        )
    )
    grouping = data.draw(st.sampled_from(["", " GROUPING g"]))
    query = f"SELECT * FROM items PREFERRING {use}{grouping}"
    assert_identical(all_paths(rows, query, setup=setup), query)
