"""Printer tests: deterministic rendering and parse/print fixpoints."""

import pytest

from repro.sql import ast
from repro.sql.parser import parse_expression, parse_preferring, parse_statement
from repro.sql.printer import format_literal, quote_string, to_sql

ROUND_TRIP_QUERIES = [
    "SELECT * FROM trips PREFERRING duration AROUND 14",
    "SELECT DISTINCT a AS x, b FROM t WHERE a = 1 ORDER BY b DESC LIMIT 5 OFFSET 1",
    "SELECT * FROM computers PREFERRING HIGHEST(main_memory) AND HIGHEST(cpu_speed)",
    "SELECT * FROM computers PREFERRING HIGHEST(main_memory) CASCADE color IN ('black', 'brown')",
    "SELECT * FROM car WHERE make = 'Opel' PREFERRING (category = 'roadster' "
    "ELSE category <> 'passenger' AND price AROUND 40000 AND HIGHEST(power)) "
    "CASCADE color = 'red' CASCADE LOWEST(mileage)",
    "SELECT ident, LEVEL(color), DISTANCE(age) FROM oldtimer "
    "PREFERRING color = 'white' ELSE color = 'yellow' AND age AROUND 40",
    "SELECT * FROM trips PREFERRING start_day AROUND 184 AND duration AROUND 14 "
    "BUT ONLY DISTANCE(start_day) <= 2 AND DISTANCE(duration) <= 2",
    "SELECT * FROM t PREFERRING LOWEST(a) GROUPING b, c",
    "SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y",
    "SELECT * FROM a CROSS JOIN b",
    "SELECT * FROM (SELECT a FROM t) AS s",
    "INSERT INTO best SELECT * FROM cars PREFERRING LOWEST(price)",
    "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')",
    "CREATE PREFERENCE cheap ON cars AS LOWEST(price) AND mileage AROUND 20000",
    "DROP PREFERENCE cheap",
    "SELECT * FROM t WHERE x IS NOT NULL AND y NOT BETWEEN 1 AND 2",
    "SELECT * FROM t WHERE name LIKE '%son' OR x IN (SELECT y FROM u)",
    "SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END AS tag FROM t",
    "SELECT * FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.id = t.id)",
    "SELECT * FROM t PREFERRING EXPLICIT(color, 'red' > 'blue', 'blue' > 'green')",
    "SELECT * FROM t PREFERRING description CONTAINS 'quiet balcony'",
    "SELECT * FROM t PREFERRING SCORE(power / price)",
    "SELECT * FROM t PREFERRING PREFERENCE cheap CASCADE color = 'red'",
]


class TestFixpoint:
    @pytest.mark.parametrize("query", ROUND_TRIP_QUERIES)
    def test_parse_print_fixpoint(self, query):
        once = to_sql(parse_statement(query))
        twice = to_sql(parse_statement(once))
        assert once == twice

    @pytest.mark.parametrize("query", ROUND_TRIP_QUERIES)
    def test_reparse_equals_original_ast(self, query):
        statement = parse_statement(query)
        assert parse_statement(to_sql(statement)) == statement


class TestLiterals:
    def test_string_quoting(self):
        assert quote_string("it's") == "'it''s'"

    def test_format_literal_values(self):
        assert format_literal(None) == "NULL"
        assert format_literal(True) == "1"
        assert format_literal(False) == "0"
        assert format_literal(42) == "42"
        assert format_literal(1.5) == "1.5"
        assert format_literal("x") == "'x'"

    def test_string_literal_round_trip(self):
        expr = ast.Literal(value="O'Brien")
        assert parse_expression(to_sql(expr)) == expr


class TestPrecedenceParentheses:
    def test_nested_or_inside_and(self):
        expr = ast.Binary(
            op="AND",
            left=ast.Binary(op="OR", left=ast.Column(name="a"), right=ast.Column(name="b")),
            right=ast.Column(name="c"),
        )
        rendered = to_sql(expr)
        assert rendered == "(a OR b) AND c"
        assert parse_expression(rendered) == expr

    def test_arithmetic_grouping(self):
        expr = ast.Binary(
            op="*",
            left=ast.Binary(op="+", left=ast.Column(name="a"), right=ast.Column(name="b")),
            right=ast.Column(name="c"),
        )
        rendered = to_sql(expr)
        assert rendered == "(a + b) * c"
        assert parse_expression(rendered) == expr

    def test_right_associative_subtraction_parenthesised(self):
        # a - (b - c) must not print as a - b - c
        expr = ast.Binary(
            op="-",
            left=ast.Column(name="a"),
            right=ast.Binary(op="-", left=ast.Column(name="b"), right=ast.Column(name="c")),
        )
        rendered = to_sql(expr)
        assert parse_expression(rendered) == expr

    def test_else_inside_pareto_needs_no_parens(self):
        term = parse_preferring("a = 1 ELSE a = 2 AND LOWEST(b)")
        assert parse_preferring(to_sql(term)) == term

    def test_pareto_inside_else_gets_parens(self):
        # Constructed directly: ELSE over a Pareto part must parenthesise.
        term = ast.ElsePref(
            parts=(
                ast.PosPref(operand=ast.Column(name="a"), values=(ast.Literal(value=1),)),
                ast.PosPref(operand=ast.Column(name="a"), values=(ast.Literal(value=2),)),
            )
        )
        rendered = to_sql(term)
        assert parse_preferring(rendered) == term

    def test_cascade_inside_pareto_gets_parens(self):
        term = ast.ParetoPref(
            parts=(
                ast.CascadePref(
                    parts=(
                        ast.LowestPref(operand=ast.Column(name="a")),
                        ast.LowestPref(operand=ast.Column(name="b")),
                    )
                ),
                ast.HighestPref(operand=ast.Column(name="c")),
            )
        )
        rendered = to_sql(term)
        assert "(" in rendered
        assert parse_preferring(rendered) == term


class TestAliases:
    def test_plain_alias_unquoted(self):
        statement = parse_statement("SELECT a AS x FROM t")
        assert to_sql(statement) == "SELECT a AS x FROM t"

    def test_special_alias_quoted(self):
        select = ast.Select(
            items=(
                ast.SelectItem(
                    expr=ast.Column(name="a"), alias="LEVEL(color)"
                ),
            ),
            sources=(ast.TableRef(name="t"),),
        )
        rendered = to_sql(select)
        assert '"LEVEL(color)"' in rendered

    def test_unknown_node_raises(self):
        with pytest.raises(TypeError):
            to_sql(object())
