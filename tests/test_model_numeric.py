"""Numeric base preference semantics."""

import math

import pytest

from repro.errors import PreferenceConstructionError
from repro.model.numeric import (
    AroundPreference,
    BetweenPreference,
    HighestPreference,
    LowestPreference,
    ScorePreference,
)
from repro.model.preference import NULL_RANK, coerce_number
from repro.sql import ast

COL = ast.Column(name="x")


class TestAround:
    def test_rank_is_absolute_distance(self):
        pref = AroundPreference(COL, 14)
        assert pref.rank(14) == 0
        assert pref.rank(10) == 4
        assert pref.rank(18) == 4

    def test_perfect_match_has_best_rank(self):
        pref = AroundPreference(COL, 40)
        assert pref.best_rank() == 0.0
        assert pref.rank(40) == pref.best_rank()

    def test_is_better_and_equal(self):
        pref = AroundPreference(COL, 40)
        assert pref.is_better((35,), (19,))
        assert not pref.is_better((19,), (35,))
        assert pref.is_equal((35,), (45,))  # both distance 5

    def test_null_is_worst(self):
        pref = AroundPreference(COL, 40)
        assert pref.rank(None) == NULL_RANK
        assert pref.is_better((41,), (None,))

    def test_non_numeric_target_rejected(self):
        with pytest.raises(PreferenceConstructionError):
            AroundPreference(COL, "red")

    def test_numeric_string_values_coerce(self):
        pref = AroundPreference(COL, 40)
        assert pref.rank("42") == 2

    def test_non_numeric_value_is_worst(self):
        pref = AroundPreference(COL, 40)
        assert pref.rank("not a number") == NULL_RANK


class TestBetween:
    def test_inside_interval_is_perfect(self):
        pref = BetweenPreference(COL, 1500, 2000)
        assert pref.rank(1500) == 0
        assert pref.rank(1750) == 0
        assert pref.rank(2000) == 0

    def test_outside_distance_to_nearer_limit(self):
        pref = BetweenPreference(COL, 1500, 2000)
        assert pref.rank(1400) == 100
        assert pref.rank(2300) == 300

    def test_limits_out_of_order_rejected(self):
        with pytest.raises(PreferenceConstructionError):
            BetweenPreference(COL, 2000, 1500)

    def test_degenerate_interval_behaves_like_around(self):
        between = BetweenPreference(COL, 40, 40)
        around = AroundPreference(COL, 40)
        for value in (10, 39, 40, 41, 90):
            assert between.rank(value) == around.rank(value)

    def test_null_is_worst(self):
        pref = BetweenPreference(COL, 0, 1)
        assert pref.rank(None) == NULL_RANK

    def test_non_numeric_limit_rejected(self):
        with pytest.raises(PreferenceConstructionError):
            BetweenPreference(COL, "a", 10)


class TestLowestHighestScore:
    def test_lowest_prefers_smaller(self):
        pref = LowestPreference(COL)
        assert pref.is_better((3,), (5,))
        assert not pref.is_better((5,), (3,))

    def test_highest_prefers_larger(self):
        pref = HighestPreference(COL)
        assert pref.is_better((512,), (256,))

    def test_score_is_higher_better(self):
        pref = ScorePreference(COL)
        assert pref.is_better((0.9,), (0.1,))

    def test_dynamic_best_rank(self):
        assert LowestPreference(COL).best_rank() is None
        assert HighestPreference(COL).best_rank() is None
        assert ScorePreference(COL).best_rank() is None

    def test_negative_values(self):
        pref = HighestPreference(COL)
        assert pref.is_better((-1,), (-5,))

    def test_null_is_worst_for_both_directions(self):
        assert LowestPreference(COL).rank(None) == NULL_RANK
        assert HighestPreference(COL).rank(None) == NULL_RANK

    def test_ties_are_equal(self):
        pref = LowestPreference(COL)
        assert pref.is_equal((7,), (7.0,))


class TestCoerceNumber:
    def test_bool_coerces_to_int(self):
        assert coerce_number(True) == 1.0
        assert coerce_number(False) == 0.0

    def test_none_is_nan(self):
        assert math.isnan(coerce_number(None))

    def test_other_objects_are_nan(self):
        assert math.isnan(coerce_number(object()))

    def test_arity(self):
        pref = AroundPreference(COL, 1)
        assert pref.arity == 1
        assert pref.operands == (COL,)
        assert pref.children() == ()
