"""Join-aware preference planning: multi-table FROM through every path.

Covers the PR-5 tentpole: joins are first-class in-memory citizens (the
pushdown executes the join on the host database, the columnar engine
winnows the joined rows), the winnow-over-join pushdown (``prejoin``)
computes the BMO set before the join where Chomicki's commute conditions
hold, join cardinality estimates compose from per-table statistics, and
comma-join lists price identically to explicit ``JOIN … ON`` syntax.
"""

import random

import pytest

import repro
from repro.errors import PlanError, RewriteError
from repro.plan import IN_MEMORY_STRATEGIES, PREJOIN_STRATEGY, STRATEGIES
from repro.sql.parser import parse_statement


def _car_dealer_connection(cars=240, dealers=16, seed=11):
    con = repro.connect(":memory:")
    con.execute(
        "CREATE TABLE cars (car_id INTEGER, dealer_id INTEGER, "
        "price INTEGER, power INTEGER, make TEXT)"
    )
    con.execute(
        "CREATE TABLE dealers (dealer_id INTEGER, region TEXT, rating INTEGER)"
    )
    rng = random.Random(seed)
    con.cursor().executemany(
        "INSERT INTO cars VALUES (?, ?, ?, ?, ?)",
        [
            (
                i,
                rng.randint(1, dealers),
                rng.randrange(5_000, 60_000, 500),
                rng.randrange(40, 300, 10),
                rng.choice(["audi", "bmw", "opel", "vw"]),
            )
            for i in range(cars)
        ],
    )
    con.cursor().executemany(
        "INSERT INTO dealers VALUES (?, ?, ?)",
        [
            (d, rng.choice(["north", "south", "east", "west"]), rng.randint(1, 5))
            for d in range(1, dealers + 1)
        ],
    )
    return con


COMMA_QUERY = (
    "SELECT * FROM cars c, dealers d WHERE c.dealer_id = d.dealer_id "
    "AND d.region = 'south' PREFERRING LOWEST(c.price) AND HIGHEST(c.power)"
)
JOIN_QUERY = (
    "SELECT * FROM cars c JOIN dealers d ON c.dealer_id = d.dealer_id "
    "WHERE d.region = 'south' PREFERRING LOWEST(c.price) AND HIGHEST(c.power)"
)


@pytest.fixture
def car_dealer():
    con = _car_dealer_connection()
    yield con
    con.close()


class TestJoinExecution:
    """The acceptance criterion: a key–FK join query plans and executes
    under all five strategies (and the winnow pushdown) with winner sets
    identical to the NOT EXISTS rewrite."""

    def test_all_strategies_agree_on_key_fk_join(self, car_dealer):
        oracle = sorted(
            car_dealer.execute(COMMA_QUERY, algorithm="rewrite").fetchall(),
            key=repr,
        )
        assert oracle
        for strategy in IN_MEMORY_STRATEGIES + (PREJOIN_STRATEGY,):
            cursor = car_dealer.execute(COMMA_QUERY, algorithm=strategy)
            assert cursor.plan.strategy == strategy
            assert sorted(cursor.fetchall(), key=repr) == oracle, strategy
        auto = car_dealer.execute(COMMA_QUERY)
        assert sorted(auto.fetchall(), key=repr) == oracle

    def test_join_syntax_executes_identically(self, car_dealer):
        oracle = sorted(
            car_dealer.execute(COMMA_QUERY, algorithm="rewrite").fetchall(),
            key=repr,
        )
        for strategy in ("sfs", PREJOIN_STRATEGY):
            rows = car_dealer.execute(JOIN_QUERY, algorithm=strategy).fetchall()
            assert sorted(rows, key=repr) == oracle

    def test_three_table_join(self, car_dealer):
        car_dealer.execute("CREATE TABLE regions (region TEXT, country TEXT)")
        car_dealer.cursor().executemany(
            "INSERT INTO regions VALUES (?, ?)",
            [("north", "de"), ("south", "de"), ("east", "at"), ("west", "ch")],
        )
        sql = (
            "SELECT c.car_id, c.price, r.country FROM cars c, dealers d, "
            "regions r WHERE c.dealer_id = d.dealer_id AND d.region = r.region "
            "AND r.country = 'de' PREFERRING LOWEST(c.price)"
        )
        oracle = sorted(
            car_dealer.execute(sql, algorithm="rewrite").fetchall(), key=repr
        )
        for strategy in ("bnl", PREJOIN_STRATEGY):
            rows = car_dealer.execute(sql, algorithm=strategy).fetchall()
            assert sorted(rows, key=repr) == oracle

    def test_left_join_runs_in_memory(self, car_dealer):
        # LEFT joins are scan-eligible (sqlite executes the join) but
        # never winnow-pushdown-eligible.
        sql = (
            "SELECT * FROM dealers d LEFT JOIN cars c "
            "ON c.dealer_id = d.dealer_id AND c.price < 10000 "
            "PREFERRING HIGHEST(d.rating)"
        )
        oracle = sorted(
            car_dealer.execute(sql, algorithm="rewrite").fetchall(), key=repr
        )
        rows = car_dealer.execute(sql, algorithm="sfs").fetchall()
        assert sorted(rows, key=repr) == oracle
        with pytest.raises(PlanError):
            car_dealer.execute(sql, algorithm=PREJOIN_STRATEGY)

    def test_projection_order_by_and_limit(self, car_dealer):
        sql = (
            "SELECT c.car_id, c.price, d.region FROM cars c, dealers d "
            "WHERE c.dealer_id = d.dealer_id "
            "PREFERRING LOWEST(c.price) AND HIGHEST(c.power) "
            "ORDER BY c.price, c.car_id LIMIT 3"
        )
        oracle = car_dealer.execute(sql, algorithm="rewrite").fetchall()
        for strategy in ("sfs", PREJOIN_STRATEGY):
            assert car_dealer.execute(sql, algorithm=strategy).fetchall() == oracle

    def test_order_by_select_list_alias(self, car_dealer):
        # Standard SQL lets ORDER BY reference a select-list alias; the
        # residual flattener must keep the alias verbatim instead of
        # trying to attribute it to a joined table.
        sql = (
            "SELECT c.car_id, c.price AS p FROM cars c, dealers d "
            "WHERE c.dealer_id = d.dealer_id AND d.rating >= 3 "
            "PREFERRING LOWEST(c.price) AND HIGHEST(c.power) "
            "ORDER BY p DESC, c.car_id"
        )
        oracle = car_dealer.execute(sql, algorithm="rewrite").fetchall()
        for strategy in IN_MEMORY_STRATEGIES + (PREJOIN_STRATEGY,):
            rows = car_dealer.execute(sql, algorithm=strategy).fetchall()
            assert rows == oracle, strategy

    def test_qualified_star(self, car_dealer):
        sql = (
            "SELECT c.* FROM cars c, dealers d WHERE c.dealer_id = d.dealer_id "
            "AND d.rating >= 4 PREFERRING LOWEST(c.price)"
        )
        oracle = sorted(
            car_dealer.execute(sql, algorithm="rewrite").fetchall(), key=repr
        )
        for strategy in ("bnl", PREJOIN_STRATEGY):
            rows = car_dealer.execute(sql, algorithm=strategy).fetchall()
            assert sorted(rows, key=repr) == oracle

    def test_grouping_over_join(self, car_dealer):
        sql = (
            "SELECT * FROM cars c, dealers d WHERE c.dealer_id = d.dealer_id "
            "PREFERRING LOWEST(c.price) GROUPING c.make"
        )
        oracle = sorted(
            car_dealer.execute(sql, algorithm="rewrite").fetchall(), key=repr
        )
        for strategy in IN_MEMORY_STRATEGIES + (PREJOIN_STRATEGY,):
            rows = car_dealer.execute(sql, algorithm=strategy).fetchall()
            assert sorted(rows, key=repr) == oracle, strategy

    def test_grouping_on_dimension_table(self, car_dealer):
        # GROUPING on the non-preference table: the generic join scan
        # handles it; the winnow pushdown must decline.
        sql = (
            "SELECT * FROM cars c, dealers d WHERE c.dealer_id = d.dealer_id "
            "PREFERRING LOWEST(c.price) GROUPING d.region"
        )
        oracle = sorted(
            car_dealer.execute(sql, algorithm="rewrite").fetchall(), key=repr
        )
        rows = car_dealer.execute(sql, algorithm="sfs").fetchall()
        assert sorted(rows, key=repr) == oracle
        plan = car_dealer.plan(sql)
        assert plan.winnow_pushdown.startswith("no")

    def test_self_join_with_aliases(self, car_dealer):
        sql = (
            "SELECT a.car_id, b.car_id FROM cars a, cars b "
            "WHERE a.dealer_id = b.dealer_id AND a.car_id < b.car_id "
            "AND a.price < 12000 PREFERRING LOWEST(a.price)"
        )
        oracle = sorted(
            car_dealer.execute(sql, algorithm="rewrite").fetchall(), key=repr
        )
        for strategy in ("bnl", PREJOIN_STRATEGY):
            rows = car_dealer.execute(sql, algorithm=strategy).fetchall()
            assert sorted(rows, key=repr) == oracle

    def test_parameterized_join_rebinds(self, car_dealer):
        sql = (
            "SELECT * FROM cars c, dealers d WHERE c.dealer_id = d.dealer_id "
            "AND c.price <= ? PREFERRING LOWEST(c.price) AND HIGHEST(c.power)"
        )
        for bound in (20_000, 45_000):
            oracle = sorted(
                car_dealer.execute(
                    sql, (bound,), algorithm="rewrite"
                ).fetchall(),
                key=repr,
            )
            # Second execution of each binding comes from the plan cache
            # and exercises the join-aware rebind path.
            for _ in range(2):
                rows = car_dealer.execute(sql, (bound,)).fetchall()
                assert sorted(rows, key=repr) == oracle

    def test_named_preference_over_join(self, car_dealer):
        car_dealer.execute("CREATE PREFERENCE cheap ON cars AS LOWEST(price)")
        sql = (
            "SELECT * FROM cars c, dealers d WHERE c.dealer_id = d.dealer_id "
            "AND d.region = 'north' PREFERRING PREFERENCE cheap"
        )
        oracle = sorted(
            car_dealer.execute(sql, algorithm="rewrite").fetchall(), key=repr
        )
        for strategy in ("sfs", PREJOIN_STRATEGY):
            rows = car_dealer.execute(sql, algorithm=strategy).fetchall()
            assert sorted(rows, key=repr) == oracle

    def test_cross_table_pareto_runs_in_memory(self, car_dealer):
        # Preference attributes spanning both tables: the generic join
        # scan applies, the winnow pushdown must decline.
        sql = (
            "SELECT * FROM cars c, dealers d WHERE c.dealer_id = d.dealer_id "
            "PREFERRING LOWEST(c.price) AND HIGHEST(d.rating)"
        )
        oracle = sorted(
            car_dealer.execute(sql, algorithm="rewrite").fetchall(), key=repr
        )
        for strategy in IN_MEMORY_STRATEGIES:
            rows = car_dealer.execute(sql, algorithm=strategy).fetchall()
            assert sorted(rows, key=repr) == oracle, strategy
        plan = car_dealer.plan(sql)
        assert plan.winnow_pushdown.startswith("no — preference attributes span")
        with pytest.raises(PlanError):
            car_dealer.execute(sql, algorithm=PREJOIN_STRATEGY)

    def test_prejoin_on_rowidless_table_falls_back(self, car_dealer):
        # A WITHOUT ROWID table in the preference position has no rowid
        # for the join-back; execution silently falls back to the
        # rewrite instead of failing.
        car_dealer.execute(
            "CREATE TABLE bikes (bike_id INTEGER PRIMARY KEY, "
            "dealer_id INTEGER, price INTEGER) WITHOUT ROWID"
        )
        rng = random.Random(5)
        car_dealer.cursor().executemany(
            "INSERT INTO bikes VALUES (?, ?, ?)",
            [(i, rng.randint(1, 16), rng.randint(100, 900)) for i in range(60)],
        )
        sql = (
            "SELECT * FROM bikes b, dealers d WHERE b.dealer_id = d.dealer_id "
            "AND d.region = 'south' PREFERRING LOWEST(b.price)"
        )
        oracle = sorted(
            car_dealer.execute(sql, algorithm="rewrite").fetchall(), key=repr
        )
        rows = car_dealer.execute(sql, algorithm=PREJOIN_STRATEGY).fetchall()
        assert sorted(rows, key=repr) == oracle

    def test_empty_winner_set_join_back(self, connection):
        connection.execute("CREATE TABLE a (x INTEGER, k INTEGER)")
        connection.execute("CREATE TABLE b (k INTEGER, y INTEGER)")
        connection.execute("INSERT INTO a VALUES (1, 1), (2, 2)")
        connection.execute("INSERT INTO b VALUES (9, 9)")
        sql = (
            "SELECT * FROM a, b WHERE a.k = b.k PREFERRING LOWEST(a.x)"
        )
        for strategy in ("rewrite", "bnl", PREJOIN_STRATEGY):
            assert connection.execute(sql, algorithm=strategy).fetchall() == []


class TestJoinPlanning:
    def test_comma_and_join_syntax_estimate_identically(self, car_dealer):
        # Satellite regression: the ON predicate must reach selectivity
        # estimation, or the two spellings of the same query price apart
        # (measured at the seed: 100 vs 1000 on two 3-row tables).
        comma = car_dealer.plan(COMMA_QUERY)
        joined = car_dealer.plan(JOIN_QUERY)
        assert comma.candidate_estimate == joined.candidate_estimate
        assert set(comma.estimates) == set(joined.estimates)
        for name, estimate in comma.estimates.items():
            assert estimate.seconds == joined.estimates[name].seconds, name

    def test_tiny_tables_regression_from_issue(self, connection):
        # The literal shape from the issue: two 3-row tables.
        connection.execute("CREATE TABLE a (k INTEGER, x INTEGER)")
        connection.execute("CREATE TABLE b (k INTEGER, y INTEGER)")
        connection.execute("INSERT INTO a VALUES (1, 10), (2, 20), (3, 30)")
        connection.execute("INSERT INTO b VALUES (1, 1), (2, 2), (3, 3)")
        comma = connection.plan(
            "SELECT * FROM a, b WHERE a.k = b.k PREFERRING LOWEST(a.x)"
        )
        joined = connection.plan(
            "SELECT * FROM a JOIN b ON a.k = b.k PREFERRING LOWEST(a.x)"
        )
        assert comma.candidate_estimate == joined.candidate_estimate
        # 3 x 3 rows, equality over two 3-distinct key columns: the
        # composed estimate is 9/3 = 3 joined candidates, not a default.
        assert comma.candidate_estimate == pytest.approx(3.0)

    def test_join_cardinality_composes_from_statistics(self, car_dealer):
        plan = car_dealer.plan(COMMA_QUERY)
        # 240 cars x 16 dealers, FK equality (1/16) and a region filter
        # (1/4): far from both the cross product and the old 1000-row
        # default.
        assert 10 <= plan.candidate_estimate <= 240
        assert plan.join_tables
        assert any("cars" in entry for entry in plan.join_tables)
        assert any("(240 rows)" in entry for entry in plan.join_tables)

    def test_explain_reports_join_rows(self, car_dealer):
        cursor = car_dealer.execute("EXPLAIN PREFERENCE " + COMMA_QUERY)
        report = dict(cursor.fetchall())
        assert "join tables" in report
        assert "cars AS c" in report["join tables"]
        assert "join cardinality (est)" in report
        assert report["winnow pushdown"].startswith("yes")
        assert f"cost: {PREJOIN_STRATEGY}" in report
        # Statistics were composed, not fabricated.
        assert not any("no statistics" in note for note in cursor.plan.notes)

    def test_explain_prejoin_shows_scan_sql(self, car_dealer):
        cursor = car_dealer.execute(
            "EXPLAIN PREFERENCE " + COMMA_QUERY, algorithm=PREJOIN_STRATEGY
        )
        report = dict(cursor.fetchall())
        assert report["strategy"].startswith(PREJOIN_STRATEGY)
        assert "winnow scan SQL" in report
        assert "EXISTS" in report["winnow scan SQL"]

    def test_host_only_plans_note_fabricated_cardinality(self, connection):
        # Satellite regression: a host-only plan used to present the
        # default row estimate as if it were measured.
        connection.execute("CREATE TABLE t (a INTEGER)")
        connection.execute("CREATE TABLE winners (a INTEGER)")
        cursor = connection.execute(
            "EXPLAIN PREFERENCE INSERT INTO winners "
            "SELECT * FROM t PREFERRING LOWEST(a)"
        )
        rows = cursor.fetchall()
        report = dict(rows)
        notes = [detail for item, detail in rows if item == "note"]
        assert any(note.startswith("host-only") for note in notes)
        assert any("no statistics; assuming" in note for note in notes)
        assert report["candidates (est)"] == "1000"

    def test_in_memory_strategies_still_reject_derived_tables(self, connection):
        connection.execute("CREATE TABLE t (a INTEGER)")
        connection.execute("INSERT INTO t VALUES (1), (2)")
        sql = (
            "SELECT * FROM (SELECT * FROM t) AS s, t "
            "PREFERRING LOWEST(s.a)"
        )
        with pytest.raises((PlanError, RewriteError)):
            connection.execute(sql, algorithm="bnl")

    def test_force_prejoin_on_single_table_raises(self, car_dealer):
        with pytest.raises(PlanError):
            car_dealer.execute(
                "SELECT * FROM cars PREFERRING LOWEST(price)",
                algorithm=PREJOIN_STRATEGY,
            )

    def test_prejoin_declines_but_only(self, car_dealer):
        sql = (
            "SELECT * FROM cars c, dealers d WHERE c.dealer_id = d.dealer_id "
            "PREFERRING c.price AROUND 20000 BUT ONLY DISTANCE(c.price) <= 5000"
        )
        plan = car_dealer.plan(sql)
        assert plan.winnow_pushdown.startswith("no — BUT ONLY")
        oracle = sorted(
            car_dealer.execute(sql, algorithm="rewrite").fetchall(), key=repr
        )
        rows = car_dealer.execute(sql, algorithm="sfs").fetchall()
        assert sorted(rows, key=repr) == oracle

    def test_prejoin_is_not_part_of_generic_strategies(self):
        # Fuzzers and benchmarks loop over STRATEGIES on single-table
        # queries; the join-only strategy must stay out of that tuple.
        assert PREJOIN_STRATEGY not in STRATEGIES

    def test_plan_survives_roundtrip_through_parser(self, car_dealer):
        statement = parse_statement(COMMA_QUERY)
        plan = car_dealer.plan(statement)
        assert plan.join_tables
        assert plan.candidate_estimate > 0
