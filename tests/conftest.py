"""Shared fixtures for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:  # editable-install fallback
    sys.path.insert(0, str(SRC))

import repro  # noqa: E402
from repro.engine import PreferenceEngine  # noqa: E402
from repro.workloads.fixtures import FIXTURES, load_fixtures  # noqa: E402


@pytest.fixture
def connection():
    """A fresh in-memory driver connection."""
    con = repro.connect(":memory:")
    yield con
    con.close()


@pytest.fixture
def fixture_connection():
    """A driver connection with all paper fixtures loaded."""
    con = repro.connect(":memory:")
    load_fixtures(con)
    yield con
    con.close()


@pytest.fixture
def fixture_engine() -> PreferenceEngine:
    """An in-memory engine with all paper fixtures registered."""
    engine = PreferenceEngine()
    for name, make in FIXTURES.items():
        engine.register(name, make())
    return engine
