"""In-memory relation tests."""

import pytest

from repro.engine.relation import Relation, column_index_map
from repro.errors import EvaluationError


class TestSchema:
    def test_column_lookup_case_insensitive(self):
        relation = Relation(columns=("Make", "Price"), rows=[("Audi", 1)])
        assert relation.column_position("make") == 0
        assert relation.column_position("PRICE") == 1
        assert relation.has_column("mAkE")
        assert not relation.has_column("model")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(EvaluationError):
            Relation(columns=("a", "A"))
        with pytest.raises(EvaluationError):
            column_index_map(["x", "x"])

    def test_unknown_column_raises(self):
        relation = Relation(columns=("a",))
        with pytest.raises(EvaluationError):
            relation.column_position("b")

    def test_row_width_checked(self):
        relation = Relation(columns=("a", "b"))
        with pytest.raises(EvaluationError):
            relation.append((1,))
        with pytest.raises(EvaluationError):
            Relation(columns=("a",), rows=[(1, 2)])


class TestData:
    def test_iteration_and_length(self):
        relation = Relation(columns=("a",), rows=[(1,), (2,)])
        assert len(relation) == 2
        assert list(relation) == [(1,), (2,)]

    def test_column_values(self):
        relation = Relation(columns=("a", "b"), rows=[(1, "x"), (2, "y")])
        assert relation.column_values("b") == ["x", "y"]

    def test_as_dicts(self):
        relation = Relation(columns=("a", "b"), rows=[(1, "x")])
        assert relation.as_dicts() == [{"a": 1, "b": "x"}]

    def test_equality(self):
        a = Relation(columns=("x",), rows=[(1,)])
        b = Relation(columns=("x",), rows=[(1,)])
        c = Relation(columns=("x",), rows=[(2,)])
        assert a == b
        assert a != c
        assert a != "not a relation"

    def test_pretty_renders_all_columns(self):
        relation = Relation(columns=("a", "b"), rows=[(1, None)])
        text = relation.pretty()
        assert "a" in text and "b" in text and "NULL" in text

    def test_pretty_truncates(self):
        relation = Relation(columns=("a",), rows=[(i,) for i in range(30)])
        text = relation.pretty(max_rows=5)
        assert "more rows" in text
