"""Compiled dominance comparators must match the generic semantics."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.engine.compiled import best_better, compile_better, generic_better
from repro.model.builder import build_preference
from repro.sql.parser import parse_preferring

_values = st.one_of(
    st.none(),
    st.integers(-20, 20),
    st.sampled_from(["red", "blue", "green", "black"]),
)

PREFERENCES = [
    "LOWEST(a)",
    "a AROUND 5",
    "a BETWEEN 2, 8",
    "a = 'red'",
    "a <> 'red'",
    "a = 'red' ELSE a = 'blue'",
    "LOWEST(a) AND LOWEST(b)",
    "LOWEST(a) AND HIGHEST(b) AND a AROUND 3",
    "LOWEST(a) CASCADE HIGHEST(b)",
    "a = 'red' CASCADE LOWEST(b)",
    "(LOWEST(a) AND LOWEST(b)) CASCADE c = 'red'",
    "LOWEST(a) CASCADE (LOWEST(b) AND LOWEST(c))",
    "d CONTAINS 'red blue'",
]


@pytest.mark.parametrize("text", PREFERENCES)
@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_compiled_agrees_with_generic(text, data):
    preference = build_preference(parse_preferring(text))
    vectors = data.draw(
        st.lists(
            st.tuples(*[_values] * preference.arity), min_size=1, max_size=8
        )
    )
    compiled = compile_better(preference, vectors)
    assert compiled is not None, text
    generic = generic_better(preference, vectors)
    for i in range(len(vectors)):
        for j in range(len(vectors)):
            assert compiled(i, j) == generic(i, j), (text, vectors[i], vectors[j])


def test_explicit_is_not_compilable():
    preference = build_preference(
        parse_preferring("EXPLICIT(a, 'red' > 'blue')")
    )
    assert compile_better(preference, [("red",), ("blue",)]) is None


def test_explicit_falls_back_to_generic():
    preference = build_preference(
        parse_preferring("EXPLICIT(a, 'red' > 'blue') AND LOWEST(b)")
    )
    vectors = [("red", 1), ("blue", 1), ("blue", 0)]
    better = best_better(preference, vectors)
    assert better(0, 1)  # red dominates blue at equal b
    assert not better(0, 2)  # incomparable: b is worse


def test_compiled_is_actually_faster():
    import time

    preference = build_preference(
        parse_preferring("LOWEST(a) AND LOWEST(b) AND LOWEST(c)")
    )
    import numpy as np

    rng = np.random.default_rng(1)
    vectors = [tuple(map(float, row)) for row in rng.random((400, 3))]

    compiled = compile_better(preference, vectors)
    generic = generic_better(preference, vectors)
    pairs = [(i, j) for i in range(0, 400, 4) for j in range(0, 400, 4)]

    started = time.perf_counter()
    for i, j in pairs:
        compiled(i, j)
    compiled_time = time.perf_counter() - started

    started = time.perf_counter()
    for i, j in pairs:
        generic(i, j)
    generic_time = time.perf_counter() - started

    assert compiled_time < generic_time
