"""Parser unit tests: grammar coverage and every query printed in the paper."""

import pytest

from repro.errors import ParseError, UnsupportedPreferenceSQL
from repro.sql import ast
from repro.sql.parser import parse_expression, parse_preferring, parse_statement

#: Every Preference SQL query that appears verbatim in the paper.
PAPER_QUERIES = [
    "SELECT * FROM trips PREFERRING duration AROUND 14;",
    "SELECT * FROM apartments PREFERRING HIGHEST(area);",
    "SELECT * FROM programmers PREFERRING exp IN ('java', 'C++');",
    "SELECT * FROM hotels PREFERRING location <> 'downtown';",
    "SELECT * FROM computers PREFERRING HIGHEST(main_memory) AND HIGHEST(cpu_speed);",
    "SELECT * FROM computers PREFERRING HIGHEST(main_memory) CASCADE color IN ('black','brown');",
    """SELECT * FROM car WHERE make = 'Opel'
       PREFERRING (category = 'roadster' ELSE category <> 'passenger' AND
       price AROUND 40000 AND HIGHEST(power))
       CASCADE color = 'red' CASCADE LOWEST(mileage);""",
    """SELECT ident, color, age, LEVEL(color), DISTANCE(age)
       FROM oldtimer
       PREFERRING color = 'white' else color = 'yellow' AND age AROUND 40;""",
    """SELECT * FROM trips
       PREFERRING start_day AROUND '1999/7/3' AND duration AROUND 14
       BUT ONLY DISTANCE(start_day)<=2 AND DISTANCE(duration)<=2;""",
    "SELECT * FROM Cars PREFERRING Make = 'Audi' AND Diesel = 'yes';",
    """SELECT * FROM products WHERE manufacturer = 'Aturi'
       PREFERRING (width AROUND 60 AND spinspeed AROUND 1200) CASCADE
       (powerconsumption BETWEEN 0, 0.9 AND LOWEST(waterconsumption)
       AND price BETWEEN 1500, 2000);""",
]


class TestPaperQueries:
    @pytest.mark.parametrize("query", PAPER_QUERIES)
    def test_parses(self, query):
        statement = parse_statement(query)
        assert isinstance(statement, ast.Select)
        assert statement.is_preference_query

    def test_complex_car_query_structure(self):
        statement = parse_statement(PAPER_QUERIES[6])
        # Top level: CASCADE of three layers.
        assert isinstance(statement.preferring, ast.CascadePref)
        first, second, third = statement.preferring.parts
        # First layer: Pareto of (POS/NEG else-chain, AROUND, HIGHEST).
        assert isinstance(first, ast.ParetoPref)
        else_part, around_part, highest_part = first.parts
        assert isinstance(else_part, ast.ElsePref)
        assert isinstance(else_part.parts[0], ast.PosPref)
        assert isinstance(else_part.parts[1], ast.NegPref)
        assert isinstance(around_part, ast.AroundPref)
        assert isinstance(highest_part, ast.HighestPref)
        assert isinstance(second, ast.PosPref)
        assert isinstance(third, ast.LowestPref)

    def test_else_binds_tighter_than_and(self):
        term = parse_preferring("color = 'white' ELSE color = 'yellow' AND age AROUND 40")
        assert isinstance(term, ast.ParetoPref)
        assert isinstance(term.parts[0], ast.ElsePref)
        assert isinstance(term.parts[1], ast.AroundPref)

    def test_and_binds_tighter_than_cascade(self):
        term = parse_preferring("LOWEST(a) AND LOWEST(b) CASCADE LOWEST(c)")
        assert isinstance(term, ast.CascadePref)
        assert isinstance(term.parts[0], ast.ParetoPref)
        assert isinstance(term.parts[1], ast.LowestPref)

    def test_comma_is_cascade_synonym(self):
        with_comma = parse_preferring("LOWEST(a), HIGHEST(b)")
        with_keyword = parse_preferring("LOWEST(a) CASCADE HIGHEST(b)")
        assert with_comma == with_keyword


class TestBasePreferences:
    def test_around(self):
        term = parse_preferring("duration AROUND 14")
        assert term == ast.AroundPref(
            operand=ast.Column(name="duration"), target=ast.Literal(value=14)
        )

    def test_between_comma_form(self):
        term = parse_preferring("price BETWEEN 1500, 2000")
        assert isinstance(term, ast.BetweenPref)
        assert term.low == ast.Literal(value=1500)
        assert term.high == ast.Literal(value=2000)

    def test_between_bracket_form(self):
        bracketed = parse_preferring("price BETWEEN [1500, 2000]")
        plain = parse_preferring("price BETWEEN 1500, 2000")
        assert bracketed == plain

    def test_pos_singleton_and_list(self):
        single = parse_preferring("color = 'red'")
        assert isinstance(single, ast.PosPref)
        assert len(single.values) == 1
        multi = parse_preferring("exp IN ('java', 'C++')")
        assert isinstance(multi, ast.PosPref)
        assert len(multi.values) == 2

    def test_neg_singleton_and_list(self):
        single = parse_preferring("location <> 'downtown'")
        assert isinstance(single, ast.NegPref)
        multi = parse_preferring("location NOT IN ('downtown', 'airport')")
        assert isinstance(multi, ast.NegPref)
        assert len(multi.values) == 2

    def test_neg_bang_equals(self):
        assert parse_preferring("a != 1") == parse_preferring("a <> 1")

    def test_lowest_highest_score(self):
        assert isinstance(parse_preferring("LOWEST(mileage)"), ast.LowestPref)
        assert isinstance(parse_preferring("HIGHEST(power)"), ast.HighestPref)
        assert isinstance(parse_preferring("SCORE(power / price)"), ast.ScorePref)

    def test_highest_accepts_arithmetic_expression(self):
        term = parse_preferring("HIGHEST(main_memory + 2 * cache)")
        assert isinstance(term.operand, ast.Binary)

    def test_contains(self):
        term = parse_preferring("description CONTAINS 'quiet balcony'")
        assert isinstance(term, ast.ContainsPref)

    def test_explicit(self):
        term = parse_preferring("EXPLICIT(color, 'red' > 'blue', 'blue' > 'green')")
        assert isinstance(term, ast.ExplicitPref)
        assert len(term.pairs) == 2

    def test_explicit_requires_pairs(self):
        with pytest.raises(ParseError):
            parse_preferring("EXPLICIT(color)")

    def test_named_preference(self):
        term = parse_preferring("PREFERENCE family_car")
        assert term == ast.NamedPref(name="family_car")

    def test_grouped_chain_in_parentheses(self):
        term = parse_preferring("(LOWEST(a) CASCADE LOWEST(b)) AND HIGHEST(c)")
        assert isinstance(term, ast.ParetoPref)
        assert isinstance(term.parts[0], ast.CascadePref)

    def test_parenthesised_operand_expression(self):
        term = parse_preferring("(price + tax) AROUND 100")
        assert isinstance(term, ast.AroundPref)
        assert isinstance(term.operand, ast.Binary)

    def test_missing_preference_operator_raises(self):
        with pytest.raises(ParseError):
            parse_preferring("price")

    def test_boolean_operator_is_rejected_in_preference(self):
        with pytest.raises(ParseError):
            parse_preferring("price < 100")


class TestConstructorSyntaxErrors:
    """Missing-parenthesis and misplaced-constructor forms get targeted
    messages naming the correct call syntax (not a bare "expected '('")."""

    @pytest.mark.parametrize("keyword", ["LOWEST", "HIGHEST", "SCORE"])
    def test_missing_parenthesis_names_the_call_form(self, keyword):
        with pytest.raises(ParseError) as excinfo:
            parse_preferring(f"{keyword} price")
        message = str(excinfo.value)
        assert f"{keyword}(<expression>)" in message
        assert f"{keyword}(price)" in message

    @pytest.mark.parametrize("keyword", ["LOWEST", "HIGHEST", "SCORE"])
    def test_missing_parenthesis_inside_full_statement(self, keyword):
        with pytest.raises(ParseError) as excinfo:
            parse_statement(f"SELECT * FROM cars PREFERRING {keyword} price")
        assert "parenthesised operand" in str(excinfo.value)

    def test_leading_around_names_the_infix_form(self):
        with pytest.raises(ParseError) as excinfo:
            parse_preferring("AROUND(price, 40000)")
        message = str(excinfo.value)
        assert "infix" in message
        assert "price AROUND 40000" in message

    def test_leading_between_names_the_infix_form(self):
        with pytest.raises(ParseError) as excinfo:
            parse_preferring("BETWEEN 1000, 1500")
        assert "price BETWEEN 1000, 1500" in str(excinfo.value)

    def test_leading_contains_names_the_infix_form(self):
        with pytest.raises(ParseError) as excinfo:
            parse_preferring("CONTAINS 'plaza'")
        assert "name CONTAINS 'plaza park'" in str(excinfo.value)

    def test_contains_call_still_parses_as_expression(self):
        # CONTAINS doubles as a function/column name; a call form must
        # keep parsing as an operand expression (soft-keyword contract).
        term = parse_preferring("contains(c) AROUND 3")
        assert isinstance(term, ast.AroundPref)

    def test_explicit_missing_parenthesis_names_the_call_form(self):
        with pytest.raises(ParseError) as excinfo:
            parse_preferring("EXPLICIT color")
        assert "EXPLICIT(color, 'white' > 'yellow')" in str(excinfo.value)

    def test_driver_surfaces_the_targeted_message(self, fixture_connection):
        # Through the driver the failed dialect parse falls back to
        # passthrough; when sqlite then rejects the statement too, the
        # dialect's diagnosis must ride along instead of being buried.
        from repro.errors import DriverError

        with pytest.raises(DriverError) as excinfo:
            fixture_connection.execute(
                "SELECT * FROM oldtimer PREFERRING LOWEST age"
            )
        assert "LOWEST(<expression>)" in str(excinfo.value)


class TestQueryBlock:
    def test_clause_order(self):
        statement = parse_statement(
            "SELECT a FROM t WHERE b = 1 PREFERRING LOWEST(c) GROUPING d "
            "BUT ONLY DISTANCE(c) <= 5 ORDER BY a DESC LIMIT 10 OFFSET 2"
        )
        assert statement.where is not None
        assert statement.preferring is not None
        assert statement.grouping == (ast.Column(name="d"),)
        assert statement.but_only is not None
        assert statement.order_by[0].descending
        assert statement.limit == ast.Literal(value=10)
        assert statement.offset == ast.Literal(value=2)

    def test_grouping_multiple_columns(self):
        statement = parse_statement(
            "SELECT * FROM t PREFERRING LOWEST(a) GROUPING b, c"
        )
        assert [c.name for c in statement.grouping] == ["b", "c"]

    def test_plain_select_is_not_preference_query(self):
        statement = parse_statement("SELECT * FROM t WHERE a = 1")
        assert not statement.is_preference_query

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct

    def test_select_aliases(self):
        statement = parse_statement("SELECT a AS x, b y FROM t")
        assert statement.items[0].alias == "x"
        assert statement.items[1].alias == "y"

    def test_qualified_star(self):
        statement = parse_statement("SELECT t.* FROM t")
        assert statement.items[0] == ast.Star(table="t")

    def test_group_by_having(self):
        statement = parse_statement(
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2"
        )
        assert len(statement.group_by) == 1
        assert statement.having is not None

    def test_joins(self):
        statement = parse_statement(
            "SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y"
        )
        join = statement.sources[0]
        assert isinstance(join, ast.Join)
        assert join.kind == "LEFT"
        assert isinstance(join.left, ast.Join)
        assert join.left.kind == "INNER"

    def test_cross_join(self):
        statement = parse_statement("SELECT * FROM a CROSS JOIN b")
        assert statement.sources[0].kind == "CROSS"

    def test_comma_join(self):
        statement = parse_statement("SELECT * FROM a, b WHERE a.x = b.x")
        assert len(statement.sources) == 2

    def test_derived_table(self):
        statement = parse_statement("SELECT * FROM (SELECT a FROM t) AS s")
        assert isinstance(statement.sources[0], ast.SubquerySource)

    def test_table_alias(self):
        statement = parse_statement("SELECT * FROM trips AS t")
        assert statement.sources[0].binding == "t"

    def test_trailing_garbage_raises(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT * FROM t garbage here")

    def test_missing_from_raises(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT *")

    def test_empty_statement_raises(self):
        with pytest.raises(ParseError):
            parse_statement("")


class TestInsertAndPdl:
    def test_insert_values(self):
        statement = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(statement, ast.Insert)
        assert statement.columns == ("a", "b")
        assert len(statement.values) == 2

    def test_insert_select_with_preferring(self):
        statement = parse_statement(
            "INSERT INTO best SELECT * FROM cars PREFERRING LOWEST(price)"
        )
        assert statement.query is not None
        assert statement.query.is_preference_query

    def test_insert_select_without_column_list(self):
        statement = parse_statement("INSERT INTO best (SELECT * FROM cars)")
        # Parenthesised select is not a column list.
        with pytest.raises(ParseError):
            parse_statement("INSERT INTO best (SELECT)")
        assert statement.table == "best"

    def test_create_preference(self):
        statement = parse_statement(
            "CREATE PREFERENCE cheap ON cars AS LOWEST(price) AND LOWEST(mileage)"
        )
        assert isinstance(statement, ast.CreatePreference)
        assert statement.name == "cheap"
        assert statement.table == "cars"
        assert isinstance(statement.term, ast.ParetoPref)

    def test_drop_preference(self):
        statement = parse_statement("DROP PREFERENCE cheap")
        assert isinstance(statement, ast.DropPreference)
        assert statement.name == "cheap"


class TestRestrictions:
    def test_preferring_in_where_subquery_rejected(self):
        with pytest.raises(UnsupportedPreferenceSQL):
            parse_statement(
                "SELECT * FROM t WHERE x IN "
                "(SELECT y FROM u PREFERRING LOWEST(y))"
            )

    def test_preferring_in_exists_subquery_rejected(self):
        with pytest.raises(UnsupportedPreferenceSQL):
            parse_statement(
                "SELECT * FROM t WHERE EXISTS "
                "(SELECT 1 FROM u PREFERRING LOWEST(y))"
            )

    def test_preferring_in_nested_subquery_rejected(self):
        with pytest.raises(UnsupportedPreferenceSQL):
            parse_statement(
                "SELECT * FROM t WHERE x IN (SELECT y FROM u WHERE z IN "
                "(SELECT w FROM v PREFERRING LOWEST(w)))"
            )

    def test_preferring_in_from_subquery_is_allowed(self):
        # The restriction is specifically about WHERE sub-queries.
        statement = parse_statement(
            "SELECT * FROM (SELECT * FROM u PREFERRING LOWEST(y)) AS s"
        )
        assert isinstance(statement.sources[0], ast.SubquerySource)


class TestExpressions:
    def test_precedence_arithmetic(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr == ast.Binary(
            op="+",
            left=ast.Literal(value=1),
            right=ast.Binary(op="*", left=ast.Literal(value=2), right=ast.Literal(value=3)),
        )

    def test_precedence_logic(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_not(self):
        expr = parse_expression("NOT a = 1")
        assert isinstance(expr, ast.Unary)
        assert expr.op == "NOT"

    def test_unary_minus(self):
        expr = parse_expression("-5")
        assert expr == ast.Unary(op="-", operand=ast.Literal(value=5))

    def test_standard_between_uses_and(self):
        expr = parse_expression("x BETWEEN 1 AND 10")
        assert isinstance(expr, ast.BetweenExpr)

    def test_not_between(self):
        expr = parse_expression("x NOT BETWEEN 1 AND 10")
        assert expr.negated

    def test_in_list_and_subquery(self):
        assert isinstance(parse_expression("x IN (1, 2)"), ast.InList)
        assert isinstance(
            parse_expression("x IN (SELECT y FROM t)"), ast.InSubquery
        )

    def test_not_in(self):
        expr = parse_expression("x NOT IN (1, 2)")
        assert expr.negated

    def test_like_and_not_like(self):
        like = parse_expression("name LIKE '%son'")
        assert like.op == "LIKE"
        negated = parse_expression("name NOT LIKE '%son'")
        assert isinstance(negated, ast.Unary)

    def test_is_null(self):
        assert parse_expression("x IS NULL") == ast.IsNull(
            operand=ast.Column(name="x")
        )
        assert parse_expression("x IS NOT NULL").negated

    def test_case_when(self):
        expr = parse_expression("CASE WHEN a = 1 THEN 'x' ELSE 'y' END")
        assert isinstance(expr, ast.CaseWhen)
        assert expr.otherwise == ast.Literal(value="y")

    def test_case_requires_when(self):
        with pytest.raises(ParseError):
            parse_expression("CASE ELSE 1 END")

    def test_function_calls(self):
        expr = parse_expression("ABS(x - 3)")
        assert isinstance(expr, ast.FuncCall)
        assert expr.name == "ABS"

    def test_count_star(self):
        expr = parse_expression("COUNT(*)")
        assert expr.star

    def test_quality_functions_parse_as_calls(self):
        expr = parse_expression("LEVEL(color)")
        assert expr == ast.FuncCall(name="LEVEL", args=(ast.Column(name="color"),))

    def test_soft_keywords_usable_as_column_names(self):
        expr = parse_expression("level + score")
        assert isinstance(expr, ast.Binary)
        assert expr.left == ast.Column(name="level")

    def test_qualified_column(self):
        expr = parse_expression("cars.price")
        assert expr == ast.Column(name="price", table="cars")

    def test_parameters_are_numbered(self):
        statement = parse_statement("SELECT * FROM t WHERE a = ? AND b = ?")
        params = [
            node
            for node in ast.walk_expr(statement.where)
            if isinstance(node, ast.Param)
        ]
        assert [p.index for p in params] == [0, 1]

    def test_literals(self):
        assert parse_expression("NULL") == ast.Literal(value=None)
        assert parse_expression("TRUE") == ast.Literal(value=True)
        assert parse_expression("FALSE") == ast.Literal(value=False)
        assert parse_expression("1.5") == ast.Literal(value=1.5)

    def test_scalar_subquery(self):
        expr = parse_expression("(SELECT MAX(x) FROM t)")
        assert isinstance(expr, ast.ScalarSubquery)

    def test_trailing_input_raises(self):
        with pytest.raises(ParseError):
            parse_expression("1 + 2 extra")
