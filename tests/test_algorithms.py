"""Skyline algorithms: correctness against the paper's selection method.

The paper's abstract nested-loop selection method (section 3.2) is the
executable definition of "maximal tuples".  Every other algorithm — BNL,
SFS, divide & conquer — must return exactly the same index set, which
hypothesis checks over random preferences and data.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.engine.algorithms import (
    ALGORITHMS,
    block_nested_loops,
    divide_and_conquer,
    dominance_key,
    maximal_indices,
    nested_loop_maximal,
    sort_filter_skyline,
)
from repro.errors import EvaluationError
from repro.model.builder import build_preference
from repro.model.categorical import pos
from repro.model.composite import ParetoPreference, PrioritizationPreference
from repro.model.numeric import AroundPreference, LowestPreference
from repro.sql import ast
from repro.sql.parser import parse_preferring

A = ast.Column(name="a")
B = ast.Column(name="b")


def two_d_pareto():
    return ParetoPreference([LowestPreference(A), LowestPreference(B)])


class TestNestedLoop:
    def test_single_tuple(self):
        assert nested_loop_maximal(two_d_pareto(), [(1, 1)]) == [0]

    def test_empty_input(self):
        assert nested_loop_maximal(two_d_pareto(), []) == []

    def test_dominated_tuple_removed(self):
        vectors = [(1, 1), (2, 2)]
        assert nested_loop_maximal(two_d_pareto(), vectors) == [0]

    def test_incomparable_tuples_kept(self):
        vectors = [(1, 3), (3, 1), (2, 2)]
        assert nested_loop_maximal(two_d_pareto(), vectors) == [0, 1, 2]

    def test_duplicates_all_kept(self):
        # Equal vectors do not dominate each other (strict order).
        vectors = [(1, 1), (1, 1), (2, 2)]
        assert nested_loop_maximal(two_d_pareto(), vectors) == [0, 1]

    def test_chain_keeps_only_top(self):
        vectors = [(i, i) for i in range(10)]
        assert nested_loop_maximal(two_d_pareto(), vectors) == [0]


class TestAgreementAcrossAlgorithms:
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_known_case(self, algorithm):
        vectors = [(1, 3), (3, 1), (2, 2), (4, 4), (1, 3)]
        assert ALGORITHMS[algorithm](two_d_pareto(), vectors) == [0, 1, 2, 4]

    @given(
        data=st.lists(
            st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=40
        )
    )
    @settings(max_examples=120, deadline=None)
    def test_pareto_agreement(self, data):
        preference = two_d_pareto()
        expected = nested_loop_maximal(preference, data)
        assert block_nested_loops(preference, data) == expected
        assert sort_filter_skyline(preference, data) == expected
        assert divide_and_conquer(preference, data) == expected

    @given(
        data=st.lists(
            st.tuples(
                st.integers(0, 5),
                st.sampled_from(["red", "blue", "green", None]),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_cascade_agreement(self, data):
        preference = PrioritizationPreference(
            [AroundPreference(A, 3), pos(B, {"red", "blue"})]
        )
        expected = nested_loop_maximal(preference, data)
        assert block_nested_loops(preference, data) == expected
        assert sort_filter_skyline(preference, data) == expected
        assert divide_and_conquer(preference, data) == expected

    @given(
        data=st.lists(
            st.tuples(
                st.sampled_from(["red", "blue", "green", "black"]),
                st.integers(0, 5),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_explicit_in_pareto_agreement(self, data):
        preference = build_preference(
            parse_preferring("EXPLICIT(a, 'red' > 'blue', 'blue' > 'green') AND LOWEST(b)")
        )
        expected = nested_loop_maximal(preference, data)
        assert block_nested_loops(preference, data) == expected
        assert divide_and_conquer(preference, data) == expected
        # SFS needs a dominance-compatible key, which EXPLICIT provides via
        # DAG depth.
        assert sort_filter_skyline(preference, data) == expected


class TestDominanceKey:
    @given(
        v=st.tuples(st.integers(0, 5), st.integers(0, 5)),
        w=st.tuples(st.integers(0, 5), st.integers(0, 5)),
    )
    @settings(max_examples=200, deadline=None)
    def test_key_compatible_with_pareto_dominance(self, v, w):
        preference = two_d_pareto()
        if preference.is_better(v, w):
            assert dominance_key(preference, v) < dominance_key(preference, w)

    @given(
        v=st.tuples(st.integers(0, 5), st.integers(0, 5)),
        w=st.tuples(st.integers(0, 5), st.integers(0, 5)),
    )
    @settings(max_examples=200, deadline=None)
    def test_key_compatible_with_cascade_dominance(self, v, w):
        preference = PrioritizationPreference(
            [LowestPreference(A), LowestPreference(B)]
        )
        if preference.is_better(v, w):
            assert dominance_key(preference, v) < dominance_key(preference, w)

    def test_key_length_matches_base_count(self):
        preference = build_preference(
            parse_preferring("LOWEST(a) AND (LOWEST(b) CASCADE HIGHEST(a))")
        )
        key = dominance_key(preference, (1, 2, 3))
        assert len(key) == 3


class TestDispatcher:
    def test_maximal_indices_default(self):
        vectors = [(2, 2), (1, 1)]
        assert maximal_indices(two_d_pareto(), vectors) == [1]

    def test_unknown_algorithm_raises(self):
        with pytest.raises(EvaluationError):
            maximal_indices(two_d_pareto(), [], algorithm="quantum")

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_all_empty(self, algorithm):
        assert ALGORITHMS[algorithm](two_d_pareto(), []) == []

    def test_large_antichain(self):
        # n incomparable tuples: everything survives.
        vectors = [(i, 100 - i) for i in range(100)]
        for algorithm in ALGORITHMS.values():
            assert algorithm(two_d_pareto(), vectors) == list(range(100))
