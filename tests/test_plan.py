"""The cost-based plan-selection subsystem.

Covers the EXPLAIN PREFERENCE statement end to end (parse → plan →
print), the statistics cache with DML invalidation, the LRU parse+plan
cache, the cost model, and — the acceptance criterion — differential
equality of auto-selection against every fixed strategy on the jobs,
cosima and shop workloads.
"""

import pytest

import repro
from repro.engine.algorithms import ALGORITHMS, maximal_indices, nested_loop_maximal
from repro.errors import ParseError, PlanError
from repro.model.builder import build_preference
from repro.plan import (
    IN_MEMORY_STRATEGIES,
    STRATEGIES,
    PlanCache,
    choose_algorithm,
    choose_strategy,
    estimate_costs,
    estimate_selectivity,
    estimate_skyline_size,
)
from repro.sql import ast
from repro.sql.parser import parse_expression, parse_preferring, parse_statement
from repro.sql.printer import to_sql
from repro.workloads.cosima import MetaSearch, make_catalog, make_shops
from repro.workloads.fixtures import relation_to_sqlite
from repro.workloads.jobs import benchmark_queries, load_jobs
from repro.workloads.shop import SearchMask, mask_to_preference_sql, washing_machines_relation


# ----------------------------------------------------------------------
# EXPLAIN PREFERENCE through the SQL front end


class TestExplainStatement:
    def test_parses_to_explain_node(self):
        statement = parse_statement(
            "EXPLAIN PREFERENCE SELECT * FROM t PREFERRING LOWEST(a)"
        )
        assert isinstance(statement, ast.ExplainPreference)
        assert isinstance(statement.statement, ast.Select)
        assert statement.statement.is_preference_query

    def test_print_roundtrip_is_fixpoint(self):
        sql = "EXPLAIN PREFERENCE SELECT * FROM t WHERE a > 1 PREFERRING b AROUND 7"
        once = to_sql(parse_statement(sql))
        assert once == sql
        assert to_sql(parse_statement(once)) == once

    def test_wraps_insert(self):
        statement = parse_statement(
            "EXPLAIN PREFERENCE INSERT INTO winners "
            "SELECT * FROM t PREFERRING LOWEST(a)"
        )
        assert isinstance(statement, ast.ExplainPreference)
        assert isinstance(statement.statement, ast.Insert)

    def test_requires_preference_keyword(self):
        with pytest.raises(ParseError):
            parse_statement("EXPLAIN SELECT * FROM t")

    def test_host_explain_passes_through(self, fixture_connection):
        # sqlite's own EXPLAIN is a documented false positive of the
        # keyword hint: one failed dialect parse, then pass-through.
        rows = fixture_connection.execute(
            "EXPLAIN QUERY PLAN SELECT * FROM oldtimer"
        ).fetchall()
        assert rows


class TestExplainExecution:
    QUERY = (
        "EXPLAIN PREFERENCE SELECT * FROM oldtimer "
        "PREFERRING color = 'white' AND age AROUND 40"
    )

    def test_reports_strategy_costs_and_rewritten_sql(self, fixture_connection):
        cursor = fixture_connection.execute(self.QUERY)
        assert cursor.column_names == ["item", "detail"]
        report = dict(cursor.fetchall())
        assert report["strategy"].startswith(cursor.plan.strategy)
        assert "NOT EXISTS" in report["rewritten SQL"]
        for strategy in STRATEGIES:
            assert f"cost: {strategy}" in report
        assert any(item.startswith("step: ") for item in report)
        assert "plan cache" in report

    def test_does_not_execute_the_query(self, fixture_connection):
        before = len(fixture_connection.trace)
        cursor = fixture_connection.execute(self.QUERY)
        assert cursor.executed_sql is None
        assert cursor.was_rewritten is False
        assert len(fixture_connection.trace) == before

    def test_binds_parameters(self, fixture_connection):
        cursor = fixture_connection.execute(
            "EXPLAIN PREFERENCE SELECT * FROM oldtimer "
            "WHERE age > ? PREFERRING LOWEST(age)",
            (20,),
        )
        report = dict(cursor.fetchall())
        assert "age > 20" in report["statement"]

    def test_explain_honours_pinned_algorithm(self, fixture_connection):
        cursor = fixture_connection.execute(
            "EXPLAIN PREFERENCE SELECT * FROM car PREFERRING LOWEST(price)",
            algorithm="sfs",
        )
        report = dict(cursor.fetchall())
        assert cursor.plan.strategy == "sfs"
        assert report["strategy"].startswith("sfs")
        assert "[forced]" in report["strategy"]

    def test_result_cleared_by_later_statements(self, fixture_connection):
        cursor = fixture_connection.cursor()
        cursor.execute(self.QUERY)
        assert cursor.fetchone() is not None
        cursor.executescript("CREATE TABLE scratch (x INTEGER);")
        assert cursor.fetchall() == []  # no stale EXPLAIN rows

    def test_passthrough_select_reports_passthrough(self, fixture_connection):
        cursor = fixture_connection.execute(
            "EXPLAIN PREFERENCE SELECT * FROM oldtimer"
        )
        report = dict(cursor.fetchall())
        assert report["strategy"].startswith("passthrough")

    def test_connection_explain_mentions_strategy(self, fixture_connection):
        report = fixture_connection.explain(
            "SELECT * FROM oldtimer PREFERRING LOWEST(age)"
        )
        assert "strategy" in report
        assert "cost: rewrite" in report
        assert "NOT EXISTS" in report
        assert "host plan" in report

    def test_reports_parallel_backend(self, fixture_connection):
        cursor = fixture_connection.execute(
            "EXPLAIN PREFERENCE SELECT * FROM oldtimer PREFERRING LOWEST(age)"
        )
        report = dict(cursor.fetchall())
        assert "parallel worker degree" in report
        assert report["parallel backend"] in ("thread", "process")
        assert cursor.plan.parallel_backend == report["parallel backend"]


# ----------------------------------------------------------------------
# Statistics cache


class TestStatistics:
    def test_row_and_distinct_counts(self, fixture_connection):
        stats = fixture_connection.table_statistics("oldtimer", ["color", "age"])
        assert stats.row_count == 6
        assert stats.distinct_count("color") == 4
        assert stats.distinct_count("AGE") == 5
        assert stats.distinct_count("unknown") is None

    def test_cached_until_dml(self, fixture_connection):
        cache = fixture_connection.statistics
        fixture_connection.table_statistics("oldtimer", ["color"])
        scans = cache.scan_count
        fixture_connection.table_statistics("oldtimer", ["color"])
        assert cache.scan_count == scans  # served from cache

    def test_extra_columns_gather_incrementally(self, fixture_connection):
        cache = fixture_connection.statistics
        fixture_connection.table_statistics("oldtimer", ["color"])
        scans = cache.scan_count
        stats = fixture_connection.table_statistics("oldtimer", ["color", "age"])
        assert cache.scan_count == scans + 1  # only the new distinct count
        assert stats.distinct_count("color") == 4

    def test_dml_invalidates(self, fixture_connection):
        fixture_connection.table_statistics("oldtimer", ["color"])
        fixture_connection.execute(
            "INSERT INTO oldtimer VALUES ('Ned', 'purple', 60)"
        )
        stats = fixture_connection.table_statistics("oldtimer", ["color"])
        assert stats.row_count == 7
        assert stats.distinct_count("color") == 5

    def test_cte_dml_invalidates(self, fixture_connection):
        # WITH-prefixed DML is still DML: the hint is unanchored.
        fixture_connection.table_statistics("oldtimer")
        fixture_connection.execute(
            "WITH donors AS (SELECT * FROM oldtimer) "
            "INSERT INTO oldtimer SELECT ident, color, age + 1 FROM donors"
        )
        assert fixture_connection.table_statistics("oldtimer").row_count == 12

    def test_missing_table_raises_plan_error(self, connection):
        with pytest.raises(PlanError):
            connection.table_statistics("missing")


# ----------------------------------------------------------------------
# Parse+plan cache


class TestPlanCache:
    def test_lru_eviction(self):
        cache = PlanCache(maxsize=2)
        cache.put("a", 0, "A")
        cache.put("b", 0, "B")
        assert cache.get("a", 0) == "A"  # refreshes a
        cache.put("c", 0, "C")  # evicts b
        assert cache.get("b", 0) is None
        assert cache.get("a", 0) == "A"
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.size == 2

    def test_hits_on_repeated_parameterized_query(self, fixture_connection):
        sql = "SELECT * FROM trips WHERE price <= ? PREFERRING duration AROUND 14"
        fixture_connection.clear_plan_cache()
        before = fixture_connection.plan_cache_stats()
        first = fixture_connection.execute(sql, (2000,)).fetchall()
        second = fixture_connection.execute(sql, (2000,)).fetchall()
        third = fixture_connection.execute(sql, (1000,)).fetchall()
        after = fixture_connection.plan_cache_stats()
        assert after.hits == before.hits + 2
        assert first == second
        assert set(third) <= set(first + second) or third  # params respected
        assert after.hit_rate > 0

    def test_identical_query_reuses_rewrite(self, fixture_connection):
        sql = "SELECT * FROM oldtimer PREFERRING LOWEST(age)"
        first = fixture_connection.execute(sql)
        second = fixture_connection.execute(sql)
        assert first.executed_sql == second.executed_sql
        assert first.fetchall() == second.fetchall()

    def test_create_preference_invalidates(self, fixture_connection):
        fixture_connection.execute(
            "CREATE PREFERENCE cheap ON trips AS LOWEST(price)"
        )
        sql = "SELECT * FROM trips PREFERRING PREFERENCE cheap"
        fixture_connection.execute(sql).fetchall()
        stats = fixture_connection.plan_cache_stats()
        # Redefining the preference bumps the catalog version: the old
        # plan (which inlined LOWEST(price)) must not be served.
        fixture_connection.execute("DROP PREFERENCE cheap")
        fixture_connection.execute(
            "CREATE PREFERENCE cheap ON trips AS HIGHEST(price)"
        )
        cursor = fixture_connection.execute(sql)
        rows = cursor.fetchall()
        assert fixture_connection.plan_cache_stats().misses > stats.misses
        highest = max(
            fixture_connection.execute("SELECT price FROM trips").fetchall()
        )[0]
        assert all(row[-1] == highest for row in rows)

    def test_data_change_triggers_replan(self, connection):
        connection.execute("CREATE TABLE p (a REAL, b REAL, c REAL)")
        connection.cursor().executemany(
            "INSERT INTO p VALUES (?, ?, ?)",
            [((i * 7919) % 97 / 97, (i * 104729) % 89 / 89, i / 40) for i in range(40)],
        )
        sql = "SELECT * FROM p PREFERRING LOWEST(a) AND LOWEST(b) AND LOWEST(c)"
        assert connection.execute(sql).plan.strategy == "rewrite"
        connection.cursor().executemany(
            "INSERT INTO p VALUES (?, ?, ?)",
            [
                ((i * 7919) % 9973 / 9973, (i * 104729) % 9949 / 9949, i / 12000)
                for i in range(12_000)
            ],
        )
        # Same statement text: the cached parse is reused, but the DML
        # bumped the data version, so the strategy is re-costed.
        assert connection.execute(sql).plan.strategy in IN_MEMORY_STRATEGIES

    def test_rollback_orphans_catalog_plans(self, fixture_connection):
        from repro.errors import CatalogError

        fixture_connection.commit()
        fixture_connection.execute(
            "CREATE PREFERENCE fleeting ON trips AS LOWEST(price)"
        )
        sql = "SELECT * FROM trips PREFERRING PREFERENCE fleeting"
        assert fixture_connection.execute(sql).fetchall()
        fixture_connection.rollback()  # CREATE PREFERENCE is transactional
        with pytest.raises(CatalogError):
            fixture_connection.execute(sql)

    def test_max_workers_change_invalidates_cached_plans(self, connection):
        connection.execute("CREATE TABLE p (a REAL, b REAL)")
        connection.cursor().executemany(
            "INSERT INTO p VALUES (?, ?)",
            [((i * 7919) % 97 / 97, (i * 104729) % 89 / 89) for i in range(200)],
        )
        sql = "SELECT * FROM p PREFERRING LOWEST(a) AND LOWEST(b) GROUPING b"
        connection.execute(sql).fetchall()
        hits_before = connection.plan_cache_stats().hits
        connection.execute(sql).fetchall()
        assert connection.plan_cache_stats().hits == hits_before + 1

        # A new worker degree re-prices the parallel strategy: the cached
        # plan must not be served, and the fresh plan carries the degree.
        connection.max_workers = 4
        misses_before = connection.plan_cache_stats().misses
        cursor = connection.execute(sql)
        cursor.fetchall()
        assert connection.plan_cache_stats().misses == misses_before + 1
        assert cursor.plan.workers == 4

        # Setting the same value again is a no-op: the plan stays cached.
        connection.max_workers = 4
        hits_before = connection.plan_cache_stats().hits
        connection.execute(sql).fetchall()
        assert connection.plan_cache_stats().hits == hits_before + 1

    def test_rollback_of_drop_preference_restores_cached_plans(
        self, fixture_connection
    ):
        fixture_connection.execute(
            "CREATE PREFERENCE cheap ON trips AS LOWEST(price)"
        )
        fixture_connection.commit()
        sql = "SELECT * FROM trips PREFERRING PREFERENCE cheap"
        baseline = fixture_connection.execute(sql).fetchall()
        version = fixture_connection.catalog_version

        fixture_connection.execute("DROP PREFERENCE cheap")
        assert fixture_connection.catalog_version != version
        fixture_connection.rollback()

        # The rollback restored the committed catalog, so the committed
        # catalog version — and with it the cached plan — is restored too.
        assert fixture_connection.catalog_version == version
        hits_before = fixture_connection.plan_cache_stats().hits
        assert fixture_connection.execute(sql).fetchall() == baseline
        assert fixture_connection.plan_cache_stats().hits == hits_before + 1

    def test_executescript_implicit_commit_prevents_restore(self, connection):
        # executescript implicitly COMMITs the pending transaction, so a
        # later rollback() must not restore plans from before the
        # now-durable catalog change.
        connection.execute("CREATE TABLE t (price INTEGER)")
        connection.cursor().executemany(
            "INSERT INTO t VALUES (?)", [(i,) for i in range(4)]
        )
        connection.execute("CREATE PREFERENCE p ON t AS LOWEST(price)")
        connection.commit()
        sql = "SELECT * FROM t PREFERRING PREFERENCE p"
        assert connection.execute(sql).fetchall() == [(0,)]
        connection.execute("DROP PREFERENCE p")
        connection.execute("CREATE PREFERENCE p ON t AS HIGHEST(price)")
        connection.cursor().executescript("CREATE TABLE u (x INTEGER);")
        connection.rollback()
        assert connection.execute(sql).fetchall() == [(3,)]

    def test_raw_commit_passthrough_tracked(self, connection):
        # COMMIT issued as plain SQL makes the catalog durable exactly
        # like Connection.commit(); rollback() must respect that.
        connection.execute("CREATE TABLE t (price INTEGER)")
        connection.cursor().executemany(
            "INSERT INTO t VALUES (?)", [(i,) for i in range(4)]
        )
        connection.execute("CREATE PREFERENCE p ON t AS HIGHEST(price)")
        connection.execute("COMMIT")
        sql = "SELECT * FROM t PREFERRING PREFERENCE p"
        connection.execute("DROP PREFERENCE p")
        connection.rollback()  # DROP reverted; committed HIGHEST restored
        assert connection.execute(sql).fetchall() == [(3,)]

    def test_autocommit_rollback_orphans_instead_of_restoring(self):
        # With isolation_level=None every catalog write commits
        # immediately: rollback() reverts nothing, so the committed
        # version must NOT be restored — the pre-change cached plan would
        # describe the wrong catalog.
        connection = repro.connect(":memory:", isolation_level=None)
        try:
            connection.execute("CREATE TABLE t (price INTEGER)")
            connection.cursor().executemany(
                "INSERT INTO t VALUES (?)", [(i,) for i in range(5)]
            )
            connection.execute("CREATE PREFERENCE p ON t AS LOWEST(price)")
            connection.commit()
            sql = "SELECT * FROM t PREFERRING PREFERENCE p"
            assert connection.execute(sql).fetchall() == [(0,)]
            connection.execute("DROP PREFERENCE p")
            connection.execute("CREATE PREFERENCE p ON t AS HIGHEST(price)")
            connection.rollback()  # no-op for the autocommitted catalog
            # The live catalog says HIGHEST; the cached LOWEST plan must
            # not be served.
            assert connection.execute(sql).fetchall() == [(4,)]
        finally:
            connection.close()

    def test_aborted_catalog_versions_are_never_reissued(
        self, fixture_connection
    ):
        fixture_connection.commit()
        fixture_connection.execute(
            "CREATE PREFERENCE fleeting ON trips AS LOWEST(price)"
        )
        sql = "SELECT * FROM trips PREFERRING PREFERENCE fleeting"
        lowest_rows = fixture_connection.execute(sql).fetchall()
        burnt = fixture_connection.catalog_version
        fixture_connection.rollback()

        # A different definition under the same name must get a *fresh*
        # version — serving the rolled-back plan would invert the order.
        fixture_connection.execute(
            "CREATE PREFERENCE fleeting ON trips AS HIGHEST(price)"
        )
        assert fixture_connection.catalog_version != burnt
        rows = fixture_connection.execute(sql).fetchall()
        prices = [row[-1] for row in rows]
        assert prices and prices != [row[-1] for row in lowest_rows]
        assert all(
            price == max(r[-1] for r in fixture_connection.execute(
                "SELECT * FROM trips"
            ).fetchall())
            for price in prices
        )

    def test_unparseable_statement_cached_as_passthrough(self, connection):
        connection.execute("CREATE TABLE prefs (preference TEXT)")
        connection.execute("INSERT INTO prefs VALUES ('blue')")
        sql = "SELECT preference FROM prefs"
        connection.execute(sql)
        misses = connection.plan_cache_stats().misses
        rows = connection.execute(sql).fetchall()
        assert rows == [("blue",)]
        assert connection.plan_cache_stats().misses == misses  # cache hit


# ----------------------------------------------------------------------
# Cost model


class TestCostModel:
    def test_skyline_grows_with_dimensions(self):
        sizes = [
            estimate_skyline_size(10_000, d, [10_000] * d) for d in (1, 2, 3, 4)
        ]
        assert sizes == sorted(sizes)
        assert sizes[-1] <= 10_000

    def test_one_dimension_uses_distinct_multiplicity(self):
        assert estimate_skyline_size(1000, 1, [10]) == pytest.approx(100.0)

    def test_selectivity_equality_uses_distinct(self):
        expr = parse_expression("region = 'muenchen'")
        assert estimate_selectivity(expr, lambda _c: 8) == pytest.approx(1 / 8)
        conjunction = parse_expression("region = 'x' AND profession = 'y'")
        assert estimate_selectivity(conjunction, lambda _c: 8) == pytest.approx(1 / 64)

    def test_selectivity_bounded(self):
        expr = parse_expression("a = 'x' AND a = 'x' AND a = 'x' AND a = 'x'")
        assert 0 < estimate_selectivity(expr, lambda _c: 10_000) <= 1

    def test_tiny_input_prefers_rewrite(self):
        estimates = estimate_costs(6, 2, [4, 5])
        assert choose_strategy(estimates) == "rewrite"

    def test_large_input_prefers_in_memory(self):
        estimates = estimate_costs(16_000, 3)
        assert choose_strategy(estimates) in IN_MEMORY_STRATEGIES

    def test_choose_algorithm_is_executable(self):
        for n in (10, 1000, 50_000):
            assert choose_algorithm(n, 3) in ALGORITHMS

    def test_wide_rows_penalise_in_memory(self):
        narrow = estimate_costs(600, 4, row_width=7)
        wide = estimate_costs(600, 4, row_width=74)
        assert wide["bnl"].seconds > narrow["bnl"].seconds
        assert wide["rewrite"].seconds == narrow["rewrite"].seconds

    def test_backend_choice_prices_process_overlap(self):
        from repro.engine.parallel import process_backend_eligible
        from repro.plan.cost import parallel_backend_choice

        backend, degree, _dispatch = parallel_backend_choice(
            200_000, 3, workers=4, rank_mode="pareto"
        )
        if process_backend_eligible("pareto", 200_000, 4):
            # Real core overlap beats a GIL-bound thread degree of 1.
            assert backend == "process"
            assert degree > 1.0
        else:  # pragma: no cover - numpy-less environments
            assert backend == "thread"

    def test_backend_choice_is_thread_only_off_the_process_path(self):
        from repro.plan.cost import parallel_backend_choice

        # Grouped queries, closure trees and single workers never price
        # the process pool — mirroring process_backend_eligible.
        for kwargs in (
            {"groups": 40.0, "rank_mode": "pareto"},
            {"rank_mode": None},
            {"rank_mode": "pareto", "workers": 1},
        ):
            kwargs.setdefault("workers", 4)
            backend, degree, _ = parallel_backend_choice(200_000, 3, **kwargs)
            assert backend == "thread"
            assert degree == 1.0  # parallel_efficiency is zero on CPython


class TestAutoAlgorithm:
    def test_auto_matches_the_oracle(self):
        preference = build_preference(
            parse_preferring("LOWEST(x) AND HIGHEST(y)")
        )
        vectors = [(i % 13, (i * 7) % 11) for i in range(200)]
        assert maximal_indices(preference, vectors, "auto") == sorted(
            nested_loop_maximal(preference, vectors)
        )


# ----------------------------------------------------------------------
# Strategy execution through the driver


class TestStrategyExecution:
    def test_forced_strategies_agree_on_fixtures(self, fixture_connection):
        sql = (
            "SELECT * FROM car WHERE mileage < 100000 "
            "PREFERRING LOWEST(price) AND HIGHEST(power) GROUPING category"
        )
        baseline = fixture_connection.execute(sql, algorithm="rewrite").fetchall()
        assert baseline
        for strategy in STRATEGIES:
            rows = fixture_connection.execute(sql, algorithm=strategy).fetchall()
            assert rows == baseline, strategy

    def test_in_memory_path_flags(self, fixture_connection):
        cursor = fixture_connection.execute(
            "SELECT * FROM car PREFERRING LOWEST(price)", algorithm="bnl"
        )
        assert cursor.was_rewritten is True
        assert cursor.plan.strategy == "bnl"
        assert "NOT EXISTS" not in cursor.executed_sql
        assert cursor.plan.pushdown_sql == cursor.executed_sql

    def test_in_memory_respects_order_and_limit(self, fixture_connection):
        sql = (
            "SELECT car_id, price FROM car PREFERRING LOWEST(price) "
            "AND HIGHEST(power) ORDER BY price DESC LIMIT 3"
        )
        rewrite = fixture_connection.execute(sql, algorithm="rewrite").fetchall()
        bnl = fixture_connection.execute(sql, algorithm="sfs").fetchall()
        assert rewrite == bnl

    def test_but_only_threshold_in_memory(self, fixture_connection):
        sql = (
            "SELECT * FROM oldtimer "
            "PREFERRING color = 'white' ELSE color = 'yellow' "
            "BUT ONLY LEVEL(color) <= 2"
        )
        rewrite = fixture_connection.execute(sql, algorithm="rewrite").fetchall()
        dnc = fixture_connection.execute(sql, algorithm="dnc").fetchall()
        assert rewrite == dnc

    def test_named_preference_inlined_for_engine(self, fixture_connection):
        fixture_connection.execute(
            "CREATE PREFERENCE frugal ON trips AS LOWEST(price)"
        )
        sql = "SELECT * FROM trips PREFERRING PREFERENCE frugal"
        rewrite = fixture_connection.execute(sql, algorithm="rewrite").fetchall()
        bnl = fixture_connection.execute(sql, algorithm="bnl").fetchall()
        assert rewrite == bnl

    def test_joins_are_in_memory_eligible(self, fixture_connection):
        # Joins are first-class in-memory citizens now: the pushdown
        # executes the join on the host database and the engine winnows
        # the joined candidate rows.
        sql = (
            "SELECT * FROM oldtimer AS a, oldtimer AS b "
            "PREFERRING LOWEST(a.age)"
        )
        oracle = sorted(
            fixture_connection.execute(sql, algorithm="rewrite").fetchall(),
            key=repr,
        )
        cursor = fixture_connection.execute(sql, algorithm="bnl")
        assert cursor.plan.strategy == "bnl"
        assert sorted(cursor.fetchall(), key=repr) == oracle

    def test_forcing_in_memory_on_host_only_shape_raises(self, fixture_connection):
        # A scalar sub-query in the select list keeps the statement on
        # the host database; forcing an in-memory strategy must refuse.
        sql = (
            "SELECT ident, (SELECT MAX(age) FROM oldtimer) AS peak "
            "FROM oldtimer PREFERRING LOWEST(age)"
        )
        with pytest.raises(PlanError):
            fixture_connection.execute(sql, algorithm="bnl")
        assert fixture_connection.execute(sql).plan.strategy == "rewrite"

    def test_unknown_strategy_rejected(self, fixture_connection):
        with pytest.raises(PlanError):
            fixture_connection.execute(
                "SELECT * FROM oldtimer PREFERRING LOWEST(age)",
                algorithm="quantum",
            )

    def test_auto_picks_in_memory_at_scale(self, connection):
        from repro.workloads.distributions import (
            DISTRIBUTIONS,
            lowest_preference_sql,
            vectors_to_relation,
        )

        matrix = DISTRIBUTIONS["independent"](8000, 3, seed=3)
        relation_to_sqlite(connection, "points", vectors_to_relation(matrix))
        cursor = connection.execute(
            "SELECT * FROM points PREFERRING " + lowest_preference_sql(3)
        )
        assert cursor.plan.strategy in IN_MEMORY_STRATEGIES


# ----------------------------------------------------------------------
# Differential acceptance: auto vs fixed strategies on the workloads


class TestDifferentialWorkloads:
    def _assert_all_strategies_identical(self, connection, sql):
        auto = connection.execute(sql).fetchall()
        for strategy in STRATEGIES:
            pinned = connection.execute(sql, algorithm=strategy).fetchall()
            assert pinned == auto, f"{strategy} diverges on {sql[:60]}..."

    def test_jobs_workload(self):
        connection = repro.connect(":memory:")
        load_jobs(connection, n=2000)
        for condition_set in ("A", "B"):
            queries = benchmark_queries("300", condition_set)
            self._assert_all_strategies_identical(connection, queries.preferring)
        connection.close()

    def test_shop_workload(self):
        connection = repro.connect(":memory:")
        relation_to_sqlite(
            connection, "products", washing_machines_relation(rows=400)
        )
        mask = SearchMask(
            manufacturer="Miola",
            width=60,
            spinspeed=1400,
            max_powerconsumption=1.2,
            minimize_waterconsumption=True,
            price_low=800,
            price_high=2200,
        )
        self._assert_all_strategies_identical(
            connection, mask_to_preference_sql(mask)
        )
        connection.close()

    def test_cosima_workload(self):
        connection = repro.connect(":memory:")
        search = MetaSearch(shops=make_shops(3), catalog=make_catalog(200))
        offers, _latencies = search.gather(session=1)
        relation_to_sqlite(connection, "offers", offers)
        from repro.workloads.cosima import SESSION_PREFERENCES

        for preference in SESSION_PREFERENCES:
            self._assert_all_strategies_identical(
                connection, f"SELECT * FROM offers PREFERRING {preference}"
            )
        connection.close()
