"""The prefcheck analyzer: every rule catches its bad fixture, spares the
clean one, honors reasoned suppressions — and the live tree is clean.

The fixtures under ``tests/prefcheck_fixtures/`` are checked-in minimal
reproductions: one known-bad and one known-clean snippet per rule, a
suppression trio (reasoned / reasonless / malformed), and two
self-contained repo-shaped trees for the cross-file fault-registry rule.
"""

import json
import subprocess
import sys
from pathlib import Path

from tools.prefcheck.engine import SUPPRESSION_RULE, analyze_paths
from tools.prefcheck.rules import all_rules

REPO = Path(__file__).resolve().parents[1]
FIXTURES = REPO / "tests" / "prefcheck_fixtures"


def analyze(relative: str):
    return analyze_paths([FIXTURES / relative], root=FIXTURES)


def rules_found(report) -> set:
    return {finding.rule for finding in report.findings}


def run_cli(*args, cwd=REPO):
    return subprocess.run(
        [sys.executable, "-m", "tools.prefcheck", *args],
        cwd=cwd,
        capture_output=True,
        text=True,
        timeout=120,
    )


class TestRuleCatalog:
    def test_six_rules_registered(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == [
            "lock-discipline",
            "paired-mutation",
            "deadline-poll",
            "fault-registry",
            "fork-safety",
            "error-taxonomy",
        ]

    def test_every_rule_states_its_invariant(self):
        for rule in all_rules():
            assert rule.invariant, rule.rule_id
            assert "PR" in rule.invariant  # provenance: the motivating PR


class TestLockDiscipline:
    def test_bad_fixture_flags_both_scopes(self):
        report = analyze("bad/lock_bad.py")
        assert rules_found(report) == {"lock-discipline"}
        messages = [f.message for f in report.findings]
        assert any("module global _count" in m for m in messages)
        assert any("self._entries" in m for m in messages)
        # The guarded write *under* the lock is not flagged.
        assert not any("put" in m for m in messages)

    def test_clean_fixture(self):
        assert analyze("clean/lock_ok.py").clean


class TestPairedMutation:
    def test_bad_fixture_flags_all_three_families(self):
        report = analyze("bad/paired_bad.py")
        assert rules_found(report) == {"paired-mutation"}
        messages = " ".join(f.message for f in report.findings)
        assert "_waiting gauge" in messages
        assert ".unlink()" in messages
        assert ".close()" in messages
        assert "finally-guarded .put()" in messages

    def test_clean_fixture(self):
        assert analyze("clean/paired_ok.py").clean


class TestDeadlinePoll:
    def test_bad_fixture_flags_the_unpolled_loop(self):
        report = analyze("bad/engine/bmo.py")
        assert rules_found(report) == {"deadline-poll"}
        assert "slow_scan()" in report.findings[0].message

    def test_clean_fixture(self):
        assert analyze("clean/engine/columns.py").clean

    def test_only_kernel_modules_are_checked(self):
        # The same unpolled loop outside engine/ is out of scope.
        assert analyze("bad/fork_bad.py").findings[0].rule != "deadline-poll"


class TestForkSafety:
    def test_bad_fixture_flags_import_time_and_task_shape(self):
        report = analyze("bad/fork_bad.py")
        assert rules_found(report) == {"fork-safety"}
        messages = " ".join(f.message for f in report.findings)
        assert "import time" in messages
        assert "lambda" in messages
        assert "bound" in messages

    def test_clean_fixture(self):
        assert analyze("clean/fork_ok.py").clean


class TestErrorTaxonomy:
    def test_bad_fixture_flags_raise_and_swallow(self):
        report = analyze("bad/server/replies.py")
        assert rules_found(report) == {"error-taxonomy"}
        messages = " ".join(f.message for f in report.findings)
        assert "ValueError" in messages
        assert "swallowed" in messages

    def test_clean_fixture(self):
        assert analyze("clean/server/replies.py").clean


class TestFaultRegistry:
    def test_bad_tree_reports_every_drift(self):
        root = FIXTURES / "registry_bad"
        report = analyze_paths([root], root=root)
        assert rules_found(report) == {"fault-registry"}
        messages = " ".join(f.message for f in report.findings)
        assert "'undeclared.point'" in messages  # undeclared call site
        assert "string literal" in messages  # non-literal point name
        assert "'ghost.point'" in messages  # dead registry entry
        assert "'client.thing'" in messages  # client point never fired
        assert "'weird.point'" in messages  # bad fired-by value
        assert "'extra.point'" in messages  # documented but undeclared
        assert "ARCHITECTURE.md says 'client'" in messages  # firer mismatch

    def test_consistent_tree_is_clean(self):
        root = FIXTURES / "registry_ok"
        assert analyze_paths([root], root=root).clean

    def test_rule_is_inert_without_a_registry_module(self):
        # Fixture scans without a faults.py stay self-contained.
        report = analyze("bad/lock_bad.py")
        assert "fault-registry" not in rules_found(report)


class TestSuppressions:
    def test_reasoned_suppression_silences_its_finding(self):
        report = analyze("suppression/with_reason.py")
        assert report.clean
        assert len(report.suppressed) == 1
        assert report.suppressed[0].rule == "lock-discipline"

    def test_suppression_without_reason_is_a_finding(self):
        report = analyze("suppression/without_reason.py")
        rules = rules_found(report)
        assert SUPPRESSION_RULE in rules
        # And the reasonless suppression does not apply either.
        assert "lock-discipline" in rules

    def test_malformed_directive_is_a_finding(self):
        report = analyze("suppression/malformed.py")
        assert rules_found(report) == {SUPPRESSION_RULE}
        assert "unparseable" in report.findings[0].message


class TestCommandLine:
    def test_bad_fixtures_exit_nonzero(self):
        for fixture in (
            "bad/lock_bad.py",
            "bad/paired_bad.py",
            "bad/engine/bmo.py",
            "bad/fork_bad.py",
            "bad/server/replies.py",
            "registry_bad",
        ):
            result = run_cli(str(FIXTURES / fixture))
            assert result.returncode == 1, (fixture, result.stdout)

    def test_clean_fixtures_exit_zero(self):
        result = run_cli(str(FIXTURES / "clean"))
        assert result.returncode == 0, result.stdout

    def test_json_output(self):
        result = run_cli(str(FIXTURES / "bad" / "lock_bad.py"), "--json", "-")
        payload = json.loads(result.stdout)
        assert payload["files"] == 1
        assert payload["findings"]
        first = payload["findings"][0]
        assert {"rule", "path", "line", "message", "invariant"} <= set(first)

    def test_rules_filter(self):
        result = run_cli(
            str(FIXTURES / "bad" / "lock_bad.py"), "--rules", "fork-safety"
        )
        assert result.returncode == 0  # lock findings filtered out

    def test_unknown_rule_is_a_usage_error(self):
        result = run_cli("src", "--rules", "no-such-rule")
        assert result.returncode == 2

    def test_missing_path_is_a_usage_error(self):
        result = run_cli("no/such/dir")
        assert result.returncode == 2

    def test_list_rules(self):
        result = run_cli("--list-rules")
        assert result.returncode == 0
        assert "deadline-poll" in result.stdout


class TestLiveTree:
    def test_src_is_finding_free(self):
        """The merged tree passes its own gate (the CI invariant)."""
        result = run_cli("src", "--json", "-")
        payload = json.loads(result.stdout)
        assert result.returncode == 0, payload["findings"]
        assert payload["findings"] == []
        # Every suppression that made the tree clean carries its reason
        # by construction (reasonless ones surface as findings).
        assert payload["suppressed"]
