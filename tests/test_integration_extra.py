"""Cross-cutting integration cases not covered by the per-module suites."""

import pytest

import repro
from repro.engine import PreferenceEngine, Relation
from repro.workloads.fixtures import relation_to_sqlite


def both_paths(relation: Relation, table: str, query: str):
    engine = PreferenceEngine({table: relation})
    engine_rows = sorted(engine.execute(query).rows, key=repr)
    con = repro.connect(":memory:")
    try:
        relation_to_sqlite(con, table, relation)
        sqlite_rows = sorted(con.execute(query).fetchall(), key=repr)
    finally:
        con.close()
    return engine_rows, sqlite_rows


class TestCrossAttributeElse:
    def test_both_paths_agree(self):
        relation = Relation(
            columns=("id", "color", "category"),
            rows=[
                (1, "red", "sedan"),
                (2, "blue", "van"),
                (3, "blue", "sedan"),
                (4, None, None),
            ],
        )
        query = (
            "SELECT id FROM items PREFERRING color = 'red' ELSE category = 'van'"
        )
        engine_rows, sqlite_rows = both_paths(relation, "items", query)
        assert engine_rows == sqlite_rows == [(1,)]


class TestTopInButOnly:
    def test_top_threshold(self):
        relation = Relation(
            columns=("id", "price"),
            rows=[(1, 100), (2, 150), (3, 100)],
        )
        # Keep only perfect price matches; both 100s are perfect.
        query = (
            "SELECT id FROM items PREFERRING price AROUND 100 "
            "BUT ONLY TOP(price) = 1"
        )
        engine_rows, sqlite_rows = both_paths(relation, "items", query)
        assert engine_rows == sqlite_rows == [(1,), (3,)]

    def test_top_threshold_can_empty_the_answer(self):
        relation = Relation(columns=("id", "price"), rows=[(1, 120), (2, 150)])
        query = (
            "SELECT id FROM items PREFERRING price AROUND 100 "
            "BUT ONLY TOP(price) = 1"
        )
        engine_rows, sqlite_rows = both_paths(relation, "items", query)
        assert engine_rows == sqlite_rows == []


class TestContainsDifferential:
    def test_mixed_case_and_null(self):
        relation = Relation(
            columns=("id", "text"),
            rows=[
                (1, "Quiet ROOM with Balcony"),
                (2, "room with balcony"),
                (3, None),
                (4, "plain room"),
            ],
        )
        query = "SELECT id FROM items PREFERRING text CONTAINS 'quiet balcony'"
        engine_rows, sqlite_rows = both_paths(relation, "items", query)
        assert engine_rows == sqlite_rows == [(1,)]


class TestQualityInOrderBy:
    def test_order_by_distance(self, fixture_connection):
        rows = fixture_connection.execute(
            "SELECT ident, DISTANCE(age) FROM oldtimer "
            "PREFERRING color = 'red' ELSE color = 'yellow' AND age AROUND 30 "
            "ORDER BY DISTANCE(age) DESC"
        ).fetchall()
        distances = [row[1] for row in rows]
        assert distances == sorted(distances, reverse=True)

    def test_engine_order_by_quality(self, fixture_engine):
        result = fixture_engine.execute(
            "SELECT ident, DISTANCE(age) FROM oldtimer "
            "PREFERRING color = 'red' ELSE color = 'yellow' AND age AROUND 30 "
            "ORDER BY DISTANCE(age) DESC"
        )
        distances = [row[1] for row in result.rows]
        assert distances == sorted(distances, reverse=True)


class TestEngineInsertColumnSubset:
    def test_insert_with_column_list_fills_nulls(self):
        engine = PreferenceEngine(
            {"t": Relation(columns=("a", "b", "c"))}
        )
        engine.execute("INSERT INTO t (c, a) VALUES (3, 1)")
        assert engine.relation("t").rows == [(1, None, 3)]

    def test_width_mismatch_raises(self):
        from repro.errors import EvaluationError

        engine = PreferenceEngine({"t": Relation(columns=("a", "b"))})
        with pytest.raises(EvaluationError):
            engine.execute("INSERT INTO t (a) VALUES (1, 2)")


class TestBetweenPreferenceOnSqlite:
    def test_interval_semantics(self):
        relation = Relation(
            columns=("id", "price"),
            rows=[(1, 1400), (2, 1700), (3, 2100), (4, 2050), (5, None)],
        )
        query = "SELECT id FROM items PREFERRING price BETWEEN 1500, 2000"
        engine_rows, sqlite_rows = both_paths(relation, "items", query)
        assert engine_rows == sqlite_rows == [(2,)]

    def test_outside_interval_closest_wins(self):
        relation = Relation(
            columns=("id", "price"),
            rows=[(1, 1400), (2, 2100), (3, 1000)],
        )
        query = "SELECT id FROM items PREFERRING price BETWEEN 1500, 2000"
        engine_rows, sqlite_rows = both_paths(relation, "items", query)
        # distances: 100, 100, 500 -> the two 100s tie as best matches.
        assert engine_rows == sqlite_rows == [(1,), (2,)]


class TestCascadeDeepNesting:
    def test_three_level_cascade_with_pareto_groups(self):
        relation = Relation(
            columns=("id", "a", "b", "c", "d"),
            rows=[
                (1, 1, 9, 5, 5),
                (2, 1, 9, 5, 4),
                (3, 1, 9, 4, 9),
                (4, 0, 9, 9, 9),
                (5, 1, 8, 0, 0),
            ],
        )
        query = (
            "SELECT id FROM items "
            "PREFERRING (LOWEST(a) AND LOWEST(b)) CASCADE LOWEST(c) CASCADE LOWEST(d)"
        )
        engine_rows, sqlite_rows = both_paths(relation, "items", query)
        assert engine_rows == sqlite_rows
        # Row 5 (1, 8) Pareto-dominates rows 1-3 (1, 9); row 4 (0, 9) is
        # incomparable to row 5, so the cascade never reaches c/d for them.
        assert engine_rows == [(4,), (5,)]
