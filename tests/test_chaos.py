"""Fault-injection chaos suite: the server survives what clients cannot see.

Each fault class from the robustness tentpole gets a deterministic
scenario: injected sqlite errors, broken pooled connections, worker
process crashes, shared-memory attach failures, client disconnects
mid-query, and slow queries past their deadline.  The common assertions:

* **no wedge** — every request completes or fails fast (the whole suite
  runs under asyncio timeouts),
* **no stale or wrong serves** — every successful reply matches a fresh
  single-connection oracle row-for-row,
* **counters conserved** — once idle, ``admitted == served + errors +
  cancelled`` and the waiting/inflight gauges read zero,
* **bounded recovery** — after the fault plan is removed, the next
  request succeeds (the pool healed, the executor rebuilt),
* **no shm leaks** — every shared-memory segment created was unlinked.
"""

import asyncio
import json
import random
import sqlite3

import pytest

import repro
from repro.engine.parallel import ParallelExecutor
from repro.engine.shm import segment_counters, transport_available
from repro.errors import QueryTimeout
from repro.model.builder import build_preference
from repro.server import PreferenceClient, PreferenceServer, ServerError
from repro.sql.parser import parse_preferring
from repro.testing import FaultPlan, FaultRule, faults, injected
from repro.testing.faults import break_pooled_connection, crash_pool_worker
from repro.workloads.traffic import (
    load_traffic_database,
    query_chains,
    zipfian_schedule,
)


@pytest.fixture(autouse=True)
def no_leftover_plan():
    """Every scenario starts and ends with inert injection points."""
    faults.uninstall()
    yield
    faults.uninstall()


@pytest.fixture(scope="module")
def traffic_database(tmp_path_factory):
    """The e15 traffic scenarios in one file database."""
    path = str(tmp_path_factory.mktemp("chaos") / "traffic.db")
    connection = repro.connect(path, isolation_level=None)
    load_traffic_database(connection, scale=0.4)
    connection.close()
    return path


@pytest.fixture(scope="module")
def oracle(traffic_database):
    """Fresh-connection expected rows per statement, fault-free."""
    chains = query_chains()
    expected: dict[str, list] = {}
    connection = repro.connect(traffic_database)
    for chain in chains:
        for sql in chain.statements:
            if sql not in expected:
                rows = connection.execute(sql).fetchall()
                expected[sql] = sorted([list(row) for row in rows], key=repr)
    connection.close()
    return expected


def serve(coroutine):
    return asyncio.run(asyncio.wait_for(coroutine, timeout=120))


async def run_traffic(
    server,
    oracle,
    sessions=10,
    retries=3,
    timeout_ms=10_000,
    seed=5,
):
    """Zipfian chain traffic against the server; parity-checked replies.

    Returns ``(wrong, errors)`` — replies that differ from the oracle
    (must stay empty under every fault mix) and the structured errors
    that survived the client's bounded retries.  A firing
    ``client.disconnect`` point makes the chaos client drop its
    connection mid-exchange and reconnect.
    """
    chains = query_chains()
    schedule = zipfian_schedule(len(chains), sessions, seed=seed)
    wrong: list[tuple[str, str]] = []
    errors: list[ServerError] = []
    for chain_index in schedule:
        chain = chains[chain_index]
        client = await PreferenceClient.connect(server.host, server.port)
        try:
            for sql in chain.statements:
                if faults.fire("client.disconnect", sql=sql):
                    # Hang up mid-query: send, never read the reply.
                    line = json.dumps({"op": "query", "sql": sql}) + "\n"
                    async with client._lock:
                        client._writer.write(line.encode("utf-8"))
                        await client._writer.drain()
                    await client.close()
                    client = await PreferenceClient.connect(
                        server.host, server.port
                    )
                    continue
                try:
                    _columns, rows = await client.query(
                        sql,
                        timeout_ms=timeout_ms,
                        retries=retries,
                    )
                except ServerError as error:
                    errors.append(error)
                    continue
                if sorted(rows, key=repr) != oracle[sql]:
                    wrong.append((chain.name, sql))
        finally:
            await client.close()
    return wrong, errors


async def settle(server):
    """Wait for the admission gauges to drain back to idle."""
    for _ in range(200):
        if server._inflight == 0 and server._waiting == 0:
            return
        await asyncio.sleep(0.02)
    raise AssertionError("server did not return to idle")


def assert_conserved(server):
    assert server._inflight == 0
    assert server._waiting == 0
    assert server.admitted == server.served + server.errors + server.cancelled


class TestChaosTraffic:
    """Traffic-level fault mixes through the full server stack."""

    def test_injected_sqlite_errors_are_retried_away(
        self, traffic_database, oracle
    ):
        async def body():
            plan = FaultPlan(
                [
                    FaultRule(
                        "driver.execute",
                        times=None,
                        probability=0.15,
                        error=lambda: sqlite3.OperationalError(
                            "chaos: injected database failure"
                        ),
                    )
                ],
                seed=11,
            )
            async with PreferenceServer(traffic_database, pool_size=2) as server:
                with injected(plan):
                    wrong, errors = await run_traffic(server, oracle)
                await settle(server)
                assert wrong == []
                # Bounded retries may still be exhausted by back-to-back
                # firings; whatever surfaced must be structured+retryable.
                for error in errors:
                    assert error.code == "database"
                    assert error.retryable
                assert_conserved(server)
                assert plan.fires.get("driver.execute", 0) >= 1
                # Bounded recovery: inert points, first query succeeds.
                client = await PreferenceClient.connect(
                    server.host, server.port
                )
                _columns, rows = await client.query(
                    "SELECT * FROM products WHERE product_id = 17"
                )
                assert sorted(rows, key=repr) == oracle[
                    "SELECT * FROM products WHERE product_id = 17"
                ]
                await client.close()

        serve(body())

    def test_broken_pooled_connections_heal_invisibly(
        self, traffic_database, oracle
    ):
        async def body():
            plan = FaultPlan(
                [
                    FaultRule(
                        "pool.checkout",
                        times=3,
                        every=4,
                        action=break_pooled_connection,
                    )
                ]
            )
            async with PreferenceServer(traffic_database, pool_size=2) as server:
                with injected(plan):
                    wrong, errors = await run_traffic(server, oracle)
                await settle(server)
                # The health check catches every break at checkout: no
                # client ever sees a broken connection.
                assert wrong == []
                assert errors == []
                assert server.pool.recycled == plan.fires["pool.checkout"] == 3
                assert (
                    server.pool.shared.event_counts()["connection_recycled"]
                    == 3
                )
                assert_conserved(server)

        serve(body())

    def test_client_disconnects_mid_query_do_not_wedge(
        self, traffic_database, oracle
    ):
        async def body():
            plan = FaultPlan(
                [FaultRule("client.disconnect", times=4, every=3)]
            )
            async with PreferenceServer(traffic_database, pool_size=2) as server:
                with injected(plan):
                    wrong, errors = await run_traffic(server, oracle)
                await settle(server)
                assert wrong == []
                assert errors == []
                assert plan.fires["client.disconnect"] == 4
                assert_conserved(server)
                # The pool reclaimed every connection.
                assert server.pool.stats()["free"] == server.pool.size

        serve(body())

    def test_slow_queries_time_out_and_release_workers(self, traffic_database):
        async def body():
            plan = FaultPlan(
                [
                    FaultRule(
                        "server.slow_query",
                        times=None,
                        delay=0.5,
                    )
                ]
            )
            async with PreferenceServer(
                traffic_database, pool_size=2, default_timeout_ms=150
            ) as server:
                client = await PreferenceClient.connect(
                    server.host, server.port
                )
                with injected(plan):
                    for _ in range(3):
                        with pytest.raises(ServerError) as excinfo:
                            await client.query(
                                "SELECT * FROM products WHERE product_id = 17"
                            )
                        assert excinfo.value.code == "timeout"
                        assert excinfo.value.retryable
                await settle(server)
                # Workers reclaimed: the very next (fault-free) query runs.
                _columns, rows = await client.query(
                    "SELECT * FROM products WHERE product_id = 17"
                )
                assert rows
                # A per-request budget overrides the server default.
                _columns, rows = await client.query(
                    "SELECT * FROM products WHERE product_id = 17",
                    timeout_ms=30_000,
                )
                assert rows
                await client.close()
                assert_conserved(server)

        serve(body())


@pytest.mark.skipif(
    not transport_available(), reason="process backend requires numpy"
)
class TestExecutorChaos:
    """Process-backend fault classes, exercised at the executor level."""

    @staticmethod
    def _adversarial(rows=6_000, seed=3):
        rng = random.Random(seed)
        preference = build_preference(
            parse_preferring("LOWEST(d0) AND LOWEST(d1)")
        )
        vectors = []
        for _ in range(rows):
            a = rng.random()
            vectors.append((a, 1.0 - a + rng.random() * 0.01))
        return preference, vectors

    def test_worker_crash_falls_back_to_threads_then_heals(self):
        preference, vectors = self._adversarial()
        before = segment_counters()
        with ParallelExecutor(max_workers=2, backend="process") as executor:
            oracle = sorted(
                ParallelExecutor(max_workers=1).maximal_indices(
                    preference, vectors
                )
            )
            plan = FaultPlan(
                [FaultRule("process.task", times=1, action=crash_pool_worker)]
            )
            with injected(plan):
                winners = executor.maximal_indices(preference, vectors)
            assert sorted(winners) == oracle
            assert executor.process_failures == 1
            assert executor.last_backend == "thread"
            # The pool is rebuilt lazily: the next query runs on processes.
            again = executor.maximal_indices(preference, vectors)
            assert sorted(again) == oracle
            assert executor.last_backend == "process"
        after = segment_counters()
        assert after["leaked"] == before["leaked"]

    def test_shm_failure_falls_back_to_threads(self):
        preference, vectors = self._adversarial(seed=4)
        before = segment_counters()
        with ParallelExecutor(max_workers=2, backend="process") as executor:
            oracle = sorted(
                ParallelExecutor(max_workers=1).maximal_indices(
                    preference, vectors
                )
            )
            plan = FaultPlan(
                [
                    FaultRule(
                        "shm.create",
                        times=1,
                        error=lambda: OSError("chaos: /dev/shm exhausted"),
                    )
                ]
            )
            with injected(plan):
                winners = executor.maximal_indices(preference, vectors)
            assert sorted(winners) == oracle
            assert executor.process_failures == 1
            assert executor.last_backend == "thread"
        after = segment_counters()
        assert after["leaked"] == before["leaked"]

    def test_worker_deadline_is_a_query_timeout_not_a_broken_pool(self):
        """A worker past the deadline cancels the query; the pool—and the
        thread fallback—must NOT mask it as infrastructure failure."""
        preference, vectors = self._adversarial(rows=30_000, seed=5)
        before = segment_counters()
        with ParallelExecutor(max_workers=2, backend="process") as executor:
            from repro.deadline import Deadline, deadline_scope

            with pytest.raises(QueryTimeout):
                with deadline_scope(Deadline.after_ms(1)):
                    executor.maximal_indices(preference, vectors)
            assert executor.process_failures == 0
            # The executor survives: an untimed run still answers.
            winners = executor.maximal_indices(preference, vectors)
            assert winners
        after = segment_counters()
        assert after["leaked"] == before["leaked"]
