"""Quality functions TOP/LEVEL/DISTANCE: resolution and evaluation."""

import pytest

from repro.errors import EvaluationError, PreferenceConstructionError
from repro.model.builder import build_preference
from repro.model.quality import QualityResolver
from repro.sql.parser import parse_expression, parse_preferring


def make_resolver(text):
    preference = build_preference(parse_preferring(text))
    return preference, QualityResolver(preference)


class TestResolution:
    def test_resolves_by_column_name(self):
        _pref, resolver = make_resolver("color = 'white' AND age AROUND 40")
        resolved = resolver.resolve(parse_expression("age"))
        assert resolved.base.kind == "AROUND"

    def test_resolution_is_case_insensitive(self):
        _pref, resolver = make_resolver("Age AROUND 40")
        resolved = resolver.resolve(parse_expression("AGE"))
        assert resolved.base.kind == "AROUND"

    def test_unmatched_target_raises(self):
        _pref, resolver = make_resolver("age AROUND 40")
        with pytest.raises(PreferenceConstructionError):
            resolver.resolve(parse_expression("price"))

    def test_ambiguous_target_raises(self):
        _pref, resolver = make_resolver("age AROUND 40 AND HIGHEST(age)")
        with pytest.raises(PreferenceConstructionError):
            resolver.resolve(parse_expression("age"))

    def test_resolves_expression_operand_structurally(self):
        _pref, resolver = make_resolver("HIGHEST(power / price)")
        resolved = resolver.resolve(parse_expression("power / price"))
        assert resolved.base.kind == "HIGHEST"

    def test_bases_and_slices(self):
        pref, resolver = make_resolver(
            "color = 'white' ELSE color = 'yellow' AND age AROUND 40"
        )
        bases = resolver.bases
        assert len(bases) == 2
        assert bases[0][1] == slice(0, 1)
        assert bases[1][1] == slice(1, 2)


class TestLevel:
    def test_layered_levels_are_one_based(self):
        # The paper's oldtimer example: white=1, yellow=2, others=3.
        _pref, resolver = make_resolver(
            "color = 'white' ELSE color = 'yellow' AND age AROUND 40"
        )
        resolved = resolver.resolve(parse_expression("color"))
        assert resolver.level(resolved, ("white", 40)) == 1
        assert resolver.level(resolved, ("yellow", 40)) == 2
        assert resolver.level(resolved, ("red", 40)) == 3

    def test_explicit_level(self):
        _pref, resolver = make_resolver("EXPLICIT(color, 'red' > 'blue')")
        resolved = resolver.resolve(parse_expression("color"))
        assert resolver.level(resolved, ("red",)) == 1
        assert resolver.level(resolved, ("blue",)) == 2

    def test_contains_level(self):
        _pref, resolver = make_resolver("description CONTAINS 'sea view'")
        resolved = resolver.resolve(parse_expression("description"))
        assert resolver.level(resolved, ("room with sea view",)) == 1
        assert resolver.level(resolved, ("sea side room",)) == 2
        assert resolver.level(resolved, ("city room",)) == 3

    def test_level_on_numeric_preference_raises(self):
        _pref, resolver = make_resolver("age AROUND 40")
        resolved = resolver.resolve(parse_expression("age"))
        with pytest.raises(EvaluationError):
            resolver.level(resolved, (40,))


class TestDistance:
    def test_around_distance(self):
        _pref, resolver = make_resolver("age AROUND 40")
        resolved = resolver.resolve(parse_expression("age"))
        assert resolver.distance(resolved, (35,)) == 5
        assert resolver.distance(resolved, (40,)) == 0

    def test_between_distance(self):
        _pref, resolver = make_resolver("price BETWEEN 100, 200")
        resolved = resolver.resolve(parse_expression("price"))
        assert resolver.distance(resolved, (150,)) == 0
        assert resolver.distance(resolved, (250,)) == 50

    def test_lowest_needs_candidate_optimum(self):
        _pref, resolver = make_resolver("LOWEST(price)")
        resolved = resolver.resolve(parse_expression("price"))
        assert resolved.dynamic_optimum
        with pytest.raises(EvaluationError):
            resolver.distance(resolved, (100,))
        assert resolver.distance(resolved, (100,), candidate_optimum=80.0) == 20

    def test_highest_distance_from_maximum(self):
        _pref, resolver = make_resolver("HIGHEST(area)")
        resolved = resolver.resolve(parse_expression("area"))
        # ranks are negated values; optimum is -max.
        assert resolver.distance(resolved, (87,), candidate_optimum=-103.0) == 16

    def test_distance_on_layered_raises(self):
        _pref, resolver = make_resolver("color = 'white'")
        resolved = resolver.resolve(parse_expression("color"))
        with pytest.raises(EvaluationError):
            resolver.distance(resolved, ("white",))


class TestTop:
    def test_top_on_around(self):
        _pref, resolver = make_resolver("age AROUND 40")
        resolved = resolver.resolve(parse_expression("age"))
        assert resolver.top(resolved, (40,)) is True
        assert resolver.top(resolved, (41,)) is False

    def test_top_on_layered(self):
        _pref, resolver = make_resolver("color = 'white' ELSE color = 'yellow'")
        resolved = resolver.resolve(parse_expression("color"))
        assert resolver.top(resolved, ("white",)) is True
        assert resolver.top(resolved, ("yellow",)) is False

    def test_top_on_neg(self):
        _pref, resolver = make_resolver("location <> 'downtown'")
        resolved = resolver.resolve(parse_expression("location"))
        assert resolver.top(resolved, ("suburb",)) is True
        assert resolver.top(resolved, ("downtown",)) is False

    def test_top_on_explicit(self):
        _pref, resolver = make_resolver("EXPLICIT(color, 'red' > 'blue')")
        resolved = resolver.resolve(parse_expression("color"))
        assert resolver.top(resolved, ("red",)) is True
        assert resolver.top(resolved, ("blue",)) is False

    def test_top_on_lowest_with_optimum(self):
        _pref, resolver = make_resolver("LOWEST(price)")
        resolved = resolver.resolve(parse_expression("price"))
        assert resolver.top(resolved, (80,), candidate_optimum=80.0) is True
        assert resolver.top(resolved, (100,), candidate_optimum=80.0) is False
        with pytest.raises(EvaluationError):
            resolver.top(resolved, (80,))
