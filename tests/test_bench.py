"""The bench harness and the paper-exactness of E2/E3."""

import pytest

from repro.bench import EXPERIMENTS, Report, Table, run_experiment, time_call
from repro.bench.experiments import e2_oldtimer, e3_cars_rewrite


class TestHarness:
    def test_time_call_returns_result(self):
        result, timing = time_call(lambda: 42, repeats=2)
        assert result == 42
        assert len(timing.samples) == 2
        assert timing.best <= timing.mean

    def test_table_rendering(self):
        table = Table(("a", "b"))
        table.add(1, "x")
        text = table.render()
        assert "a" in text and "x" in text

    def test_table_arity_checked(self):
        table = Table(("a",))
        with pytest.raises(ValueError):
            table.add(1, 2)

    def test_report_render(self):
        report = Report(experiment="eX", title="demo")
        table = Table(("c",))
        table.add(1)
        report.add_table("numbers", table)
        report.note("a note")
        text = report.render()
        assert "eX" in text and "numbers" in text and "a note" in text


class TestExperiments:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10",
            "e11", "e12", "e13", "e14", "e15", "e16",
        }

    def test_plan_alias(self):
        from repro.bench.experiments import ALIASES

        assert ALIASES["plan"] == "e8"
        assert ALIASES["parallel"] == "e9"
        assert ALIASES["views"] == "e10"
        assert ALIASES["columnar"] == "e11"
        assert ALIASES["joins"] == "e12"
        assert ALIASES["semantic"] == "e13"
        assert ALIASES["sessions"] == "e14"
        assert ALIASES["server"] == "e15"
        assert ALIASES["robustness"] == "e16"

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("e99")

    def test_json_emitter(self, tmp_path):
        import json

        from repro.bench.__main__ import main
        from repro.bench.harness import report_payload

        payload = report_payload(e2_oldtimer())
        json.dumps(payload)  # tuple keys and row values must serialise
        assert payload["experiment"] == "E2"
        assert payload["data"]["exact_match"] is True

        out = tmp_path / "bench.json"
        assert main(["e2", "--json", str(out)]) == 0
        document = json.loads(out.read_text())
        assert document["experiment"] == "E2"

    def test_cli_lives_in_harness(self, tmp_path):
        """``__main__`` is a thin shim; the runner itself is ``run_cli``."""
        import json

        from repro.bench.__main__ import main
        from repro.bench.harness import run_cli

        assert main is run_cli

        out = tmp_path / "multi.json"
        assert run_cli(["e2", "e3", "--json", str(out)]) == 0
        document = json.loads(out.read_text())
        assert [payload["experiment"] for payload in document] == ["E2", "E3"]

    def test_e2_exact_match(self):
        report = e2_oldtimer()
        assert report.data["exact_match"] is True

    def test_e3_paths_agree_and_match_paper(self):
        report = e3_cars_rewrite()
        assert report.data["agree"] is True
        assert report.data["winners_ok"] is True
        create_view = report.data["script"][0]
        assert create_view.startswith("CREATE VIEW Aux AS")

    def test_e4_quick_reproduces_claims(self):
        report = run_experiment("e4", quick=True)
        assert report.data["share_in_1_20"] >= 0.9
        assert report.data["preference_share_of_total"] < 0.2

    def test_e9_quick_identical_and_declines_small(self):
        report = run_experiment("e9", quick=True)
        # Identical winner sets are asserted inside the experiment; the
        # cost model must not parallelize the 60-row probe.
        assert report.data["small_input_strategy"] != "parallel"
        assert report.data["driver_rows"] > 0
        for key, cell in report.data.items():
            if isinstance(key, tuple):
                assert cell["bnl"] > 0 and cell["parallel"] > 0

    def test_e14_quick_serves_and_gates(self):
        report = run_experiment("e14", quick=True)
        assert report.data["min_refinement_speedup"] >= report.data["speedup_floor"]
        assert report.data["session_stats"]["served"] >= 4

    def test_e15_quick_traffic_and_offload_parity(self):
        report = run_experiment("e15", quick=True)
        offload = report.data["offload"]
        # Winner-set parity between serial/thread/process is asserted
        # inside the experiment; the timings must be real measurements.
        assert offload["serial"] > 0 and offload["process"] > 0
        traffic = report.data["traffic"]
        assert traffic["plan_cache"]["hit_rate"] >= 0.5
        assert traffic["session_stats"]["served"] >= 1
        assert traffic["admission"]["errors"] == 0
        assert traffic["parity_checked"] >= 10

    def test_e16_quick_chaos_traffic(self):
        report = run_experiment("e16", quick=True)
        # Wrong answers, conservation, recovery and shm leaks are
        # asserted inside the experiment; the data must show real chaos.
        assert report.data["wrong_answers"] == 0
        assert sum(report.data["fires"].values()) >= 1
        assert report.data["recovery_requests"] == 1
        assert report.data["p50_ratio"] <= 1.10
        assert report.data["shm_leaked"] == 0
        for code in report.data["error_codes"]:
            assert code in {"database", "overloaded", "timeout"}

    def test_e1_quick_shapes(self):
        report = run_experiment("e1", quick=True)
        for pool in ("300", "600", "1000"):
            pool_size = int(pool)
            for conditions in ("A", "B"):
                conj = report.data[(pool, conditions, "SQL 1 (conjunctive)")]
                disj = report.data[(pool, conditions, "SQL 2 (disjunctive)")]
                pref = report.data[(pool, conditions, "Preference SQL")]
                # starvation / flooding / small BMO set
                assert conj["rows"] <= pool_size * 0.05
                assert disj["rows"] >= pool_size * 0.3
                assert 1 <= pref["rows"] <= 50
