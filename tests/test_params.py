"""Parameter binding into statement ASTs."""

import pytest

from repro.errors import DriverError
from repro.sql.params import bind_parameters
from repro.sql.parser import parse_statement
from repro.sql.printer import to_sql


def bind(text, *params):
    return bind_parameters(parse_statement(text), params)


class TestBinding:
    def test_where_params(self):
        statement = bind("SELECT * FROM t WHERE a = ? AND b = ?", 1, "x")
        assert to_sql(statement) == "SELECT * FROM t WHERE a = 1 AND b = 'x'"

    def test_preference_params(self):
        statement = bind(
            "SELECT * FROM t PREFERRING a AROUND ? AND b BETWEEN ?, ?", 14, 1, 5
        )
        assert to_sql(statement) == (
            "SELECT * FROM t PREFERRING a AROUND 14 AND b BETWEEN 1, 5"
        )

    def test_pos_value_params(self):
        statement = bind("SELECT * FROM t PREFERRING c IN (?, ?)", "a", "b")
        assert "IN ('a', 'b')" in to_sql(statement)

    def test_insert_values_params(self):
        statement = bind("INSERT INTO t VALUES (?, ?)", 1, 2)
        assert to_sql(statement) == "INSERT INTO t VALUES (1, 2)"

    def test_but_only_and_limit_params(self):
        statement = bind(
            "SELECT * FROM t PREFERRING a AROUND 5 "
            "BUT ONLY DISTANCE(a) <= ? LIMIT ?",
            2,
            10,
        )
        rendered = to_sql(statement)
        assert "<= 2" in rendered and "LIMIT 10" in rendered

    def test_string_with_quote_escaped(self):
        statement = bind("SELECT * FROM t WHERE a = ?", "O'Brien")
        assert "O''Brien" in to_sql(statement)

    def test_subquery_params(self):
        statement = bind(
            "SELECT * FROM t WHERE x IN (SELECT y FROM u WHERE z = ?)", 3
        )
        assert "z = 3" in to_sql(statement)

    def test_explicit_pair_params(self):
        statement = bind(
            "SELECT * FROM t PREFERRING EXPLICIT(c, ? > ?)", "red", "blue"
        )
        assert "'red' > 'blue'" in to_sql(statement)

    def test_null_param(self):
        statement = bind("SELECT * FROM t WHERE a = ?", None)
        assert "a = NULL" in to_sql(statement)


class TestErrors:
    def test_too_few_params(self):
        with pytest.raises(DriverError):
            bind("SELECT * FROM t WHERE a = ? AND b = ?", 1)

    def test_too_many_params(self):
        with pytest.raises(DriverError):
            bind("SELECT * FROM t WHERE a = ?", 1, 2)

    def test_no_markers_no_params_ok(self):
        statement = bind("SELECT * FROM t")
        assert to_sql(statement) == "SELECT * FROM t"
