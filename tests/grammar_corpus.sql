-- Golden corpus of exemplar Preference SQL statements, one per line.
-- Every grammar production (equivalently: every AST node type) must
-- appear in at least one statement; tests/test_grammar_corpus.py
-- round-trips each line parse -> print -> parse and compares the ASTs,
-- then asserts the corpus covers every concrete node class.
SELECT * FROM oldtimer
SELECT DISTINCT ident, color AS paint FROM oldtimer WHERE age >= 30
SELECT o.* FROM oldtimer AS o WHERE o.color = 'red' OR o.age < 20
SELECT ident FROM oldtimer WHERE NOT (age > 40) AND color <> 'green'
SELECT ident, age + 1 AS next_age, age * 2, age - 1, age / 2, age % 7 FROM oldtimer
SELECT ident || '-' || color AS tag FROM oldtimer
SELECT ident FROM oldtimer WHERE age BETWEEN 20 AND 45
SELECT ident FROM oldtimer WHERE age NOT BETWEEN 20 AND 45
SELECT ident FROM oldtimer WHERE color IN ('red', 'white')
SELECT ident FROM oldtimer WHERE color NOT IN ('green')
SELECT ident FROM oldtimer WHERE color LIKE 'r%'
SELECT ident FROM oldtimer WHERE color NOT LIKE 'g%'
SELECT ident FROM oldtimer WHERE color IS NULL
SELECT ident FROM oldtimer WHERE color IS NOT NULL
SELECT ident FROM oldtimer WHERE age = ? AND color = ?
SELECT ident FROM oldtimer WHERE -age < +10
SELECT ident FROM oldtimer WHERE age IN (SELECT age FROM oldtimer WHERE color = 'red')
SELECT ident FROM oldtimer WHERE age NOT IN (SELECT age FROM oldtimer WHERE color = 'green')
SELECT ident FROM oldtimer WHERE EXISTS (SELECT * FROM oldtimer WHERE age > 50)
SELECT ident FROM oldtimer WHERE NOT EXISTS (SELECT * FROM oldtimer WHERE age > 90)
SELECT ident, (SELECT MAX(age) FROM oldtimer) AS oldest FROM oldtimer
SELECT COUNT(*) FROM oldtimer
SELECT UPPER(color), COALESCE(color, 'unknown') FROM oldtimer
SELECT CASE WHEN age > 40 THEN 'old' WHEN age > 20 THEN 'mid' ELSE 'young' END AS bucket FROM oldtimer
SELECT TRUE, FALSE, NULL, 3.5, 'text' FROM oldtimer
SELECT color, COUNT(*) AS n FROM oldtimer GROUP BY color HAVING COUNT(*) > 1
SELECT ident FROM oldtimer ORDER BY age DESC, ident LIMIT 3 OFFSET 1
SELECT o.ident, t.trip_id FROM oldtimer o JOIN trips t ON o.age = t.duration
SELECT o.ident FROM oldtimer o INNER JOIN trips t ON o.age = t.duration
SELECT o.ident FROM oldtimer o LEFT OUTER JOIN trips t ON o.age = t.duration
SELECT o.ident FROM oldtimer o CROSS JOIN trips t
SELECT sub.ident FROM (SELECT ident, age FROM oldtimer WHERE age < 50) AS sub
SELECT ident FROM oldtimer PREFERRING age AROUND 40
SELECT trip_id FROM trips PREFERRING price BETWEEN 1000, 1500
SELECT trip_id FROM trips PREFERRING LOWEST(price) AND HIGHEST(duration)
SELECT ident FROM oldtimer PREFERRING SCORE(age * 2)
SELECT ident FROM oldtimer PREFERRING color = 'white' ELSE color = 'yellow'
SELECT ident FROM oldtimer PREFERRING color IN ('white', 'yellow') AND color <> 'green'
SELECT ident FROM oldtimer PREFERRING color NOT IN ('green', 'red')
SELECT name FROM hotels PREFERRING features CONTAINS 'sauna pool'
SELECT ident FROM oldtimer PREFERRING EXPLICIT(color, 'white' > 'yellow', 'yellow' > 'red')
SELECT ident FROM oldtimer PREFERRING PREFERENCE veteran
SELECT ident FROM oldtimer PREFERRING (LOWEST(age) ELSE HIGHEST(age)) CASCADE color = 'red' AND age AROUND 35
SELECT ident FROM oldtimer PREFERRING age AROUND 40 GROUPING color
SELECT ident, LEVEL(color), DISTANCE(age), TOP(age) FROM oldtimer PREFERRING color = 'white' ELSE color = 'yellow' AND age AROUND 40
SELECT ident FROM oldtimer PREFERRING age AROUND 40 GROUPING color BUT ONLY DISTANCE(age) <= 5
SELECT ident FROM oldtimer WHERE age > 10 PREFERRING age AROUND 40 GROUPING color BUT ONLY TOP(age) = 1 ORDER BY ident LIMIT 5
INSERT INTO oldtimer VALUES ('Lisa', 'blue', 22)
INSERT INTO oldtimer (ident, color, age) VALUES ('Abe', 'grey', 70), ('Ned', 'green', 44)
INSERT INTO oldtimer VALUES (?, ?, ?)
INSERT INTO veterans SELECT * FROM oldtimer PREFERRING HIGHEST(age)
CREATE PREFERENCE veteran ON oldtimer AS age AROUND 40 AND color = 'white' ELSE color = 'yellow'
DROP PREFERENCE veteran
CREATE PREFERENCE VIEW best_oldtimers AS SELECT * FROM oldtimer PREFERRING age AROUND 40 GROUPING color
DROP PREFERENCE VIEW best_oldtimers
CREATE PREFERENCE CONSTRAINT oldtimer_pk ON oldtimer KEY (ident)
CREATE PREFERENCE CONSTRAINT oldtimer_req ON oldtimer NOT NULL (age, color)
CREATE PREFERENCE CONSTRAINT oldtimer_dom ON oldtimer CHECK (color IN ('red', 'white', 'yellow'))
CREATE PREFERENCE CONSTRAINT oldtimer_fd ON oldtimer FD (ident) DETERMINES (color, age)
DROP PREFERENCE CONSTRAINT oldtimer_pk
EXPLAIN PREFERENCE SELECT * FROM oldtimer PREFERRING age AROUND 40
EXPLAIN PREFERENCE INSERT INTO veterans SELECT * FROM oldtimer PREFERRING HIGHEST(age)
