"""The Preference driver: pass-through, rewriting, DB-API behaviour."""

import pytest

import repro
from repro.errors import DriverError


class TestPassThrough:
    def test_plain_sql_is_not_parsed(self, connection):
        # A statement our dialect parser does not cover must still work.
        connection.execute("CREATE TABLE t (a INTEGER PRIMARY KEY, b TEXT DEFAULT 'x')")
        connection.execute("INSERT INTO t (a) VALUES (1)")
        rows = connection.execute("SELECT a, b FROM t").fetchall()
        assert rows == [(1, "x")]

    def test_passthrough_keeps_native_params(self, connection):
        connection.execute("CREATE TABLE t (a INTEGER)")
        connection.execute("INSERT INTO t VALUES (?)", (42,))
        rows = connection.execute("SELECT * FROM t WHERE a = ?", (42,)).fetchall()
        assert rows == [(42,)]

    def test_cursor_flags(self, connection):
        connection.execute("CREATE TABLE t (a INTEGER)")
        cursor = connection.execute("SELECT * FROM t")
        assert cursor.was_rewritten is False
        assert cursor.executed_sql == "SELECT * FROM t"

    def test_aggregates_pass_through(self, fixture_connection):
        rows = fixture_connection.execute(
            "SELECT color, COUNT(*) FROM oldtimer GROUP BY color ORDER BY color"
        ).fetchall()
        assert ("red", 2) in rows

    def test_preference_keyword_as_column_passes_through(self, connection):
        # 'preference' as a column name must not break plain SQL.
        connection.execute("CREATE TABLE prefs (preference TEXT)")
        connection.execute("INSERT INTO prefs VALUES ('blue')")
        rows = connection.execute("SELECT preference FROM prefs").fetchall()
        assert rows == [("blue",)]

    def test_sqlite_error_wrapped(self, connection):
        with pytest.raises(DriverError):
            connection.execute("SELECT * FROM missing_table")


class TestPreferenceExecution:
    def test_rewrite_flag_and_trace(self, fixture_connection):
        cursor = fixture_connection.execute(
            "SELECT * FROM trips PREFERRING duration AROUND 14"
        )
        assert cursor.was_rewritten
        # Either the classical NOT EXISTS rewrite or, when the constraint
        # catalog proves the weak order, the semantic single-pass SQL.
        if cursor.plan is not None and cursor.plan.semantic_rule is not None:
            assert "ORDER BY" in cursor.executed_sql
        else:
            assert "NOT EXISTS" in cursor.executed_sql
        original, executed = fixture_connection.trace[-1]
        assert "PREFERRING" in original
        assert "PREFERRING" not in executed

    def test_forced_rewrite_is_classical_not_exists(self, fixture_connection):
        cursor = fixture_connection.execute(
            "SELECT * FROM trips PREFERRING duration AROUND 14",
            algorithm="rewrite",
        )
        assert "NOT EXISTS" in cursor.executed_sql

    def test_best_matches_only(self, fixture_connection):
        rows = fixture_connection.execute(
            "SELECT trip_id FROM trips PREFERRING duration AROUND 14"
        ).fetchall()
        assert {row[0] for row in rows} == {5, 7}

    def test_params_bound_into_preference_query(self, fixture_connection):
        rows = fixture_connection.execute(
            "SELECT trip_id FROM trips WHERE destination = ? "
            "PREFERRING duration AROUND ?",
            ("Crete", 14),
        ).fetchall()
        assert {row[0] for row in rows} == {2}

    def test_executemany_with_preferring(self, fixture_connection):
        fixture_connection.execute("CREATE TABLE picks (trip_id INTEGER, destination TEXT, start_day INTEGER, duration INTEGER, price INTEGER)")
        cursor = fixture_connection.cursor()
        cursor.executemany(
            "INSERT INTO picks SELECT * FROM trips WHERE destination = ? "
            "PREFERRING LOWEST(price)",
            [("Crete",), ("Norway",)],
        )
        rows = fixture_connection.execute("SELECT trip_id FROM picks").fetchall()
        assert {row[0] for row in rows} == {1, 5}

    def test_column_names_exposed(self, fixture_connection):
        cursor = fixture_connection.execute(
            "SELECT ident, LEVEL(color) FROM oldtimer PREFERRING color = 'red'"
        )
        assert cursor.column_names == ["ident", "LEVEL(color)"]

    def test_fetch_interfaces(self, fixture_connection):
        cursor = fixture_connection.execute(
            "SELECT trip_id FROM trips PREFERRING LOWEST(price)"
        )
        assert cursor.fetchone() is not None
        cursor = fixture_connection.execute(
            "SELECT trip_id FROM trips PREFERRING LOWEST(price)"
        )
        assert len(cursor.fetchmany(10)) >= 1
        cursor = fixture_connection.execute(
            "SELECT trip_id FROM trips PREFERRING LOWEST(price)"
        )
        assert list(iter(cursor))

    def test_rejected_rewrite_reports_sql(self, connection):
        connection.execute("CREATE TABLE t (x INTEGER)")
        # LEVEL on a numeric preference is a rewrite-time error.
        with pytest.raises(Exception):
            connection.execute("SELECT LEVEL(x) FROM t PREFERRING LOWEST(x)")


class TestPdlThroughDriver:
    def test_create_use_drop(self, fixture_connection):
        con = fixture_connection
        con.execute("CREATE PREFERENCE short_trip ON trips AS duration AROUND 7")
        rows = con.execute(
            "SELECT trip_id FROM trips PREFERRING PREFERENCE short_trip"
        ).fetchall()
        assert {row[0] for row in rows} == {1}
        con.execute("DROP PREFERENCE short_trip")
        with pytest.raises(Exception):
            con.execute("SELECT * FROM trips PREFERRING PREFERENCE short_trip")

    def test_named_preference_composes(self, fixture_connection):
        con = fixture_connection
        con.execute("CREATE PREFERENCE cheap ON trips AS LOWEST(price)")
        rows = con.execute(
            "SELECT trip_id FROM trips "
            "PREFERRING PREFERENCE cheap AND duration AROUND 14"
        ).fetchall()
        assert len(rows) >= 1


class TestConnectionManagement:
    def test_context_manager_commits(self, tmp_path):
        path = str(tmp_path / "db.sqlite")
        with repro.connect(path) as con:
            con.execute("CREATE TABLE t (a INTEGER)")
            con.execute("INSERT INTO t VALUES (1)")
        with repro.connect(path) as con:
            assert con.execute("SELECT COUNT(*) FROM t").fetchone() == (1,)

    def test_context_manager_rolls_back_on_error(self, tmp_path):
        path = str(tmp_path / "db.sqlite")
        with repro.connect(path) as con:
            con.execute("CREATE TABLE t (a INTEGER)")
        with pytest.raises(RuntimeError):
            with repro.connect(path) as con:
                con.execute("INSERT INTO t VALUES (1)")
                raise RuntimeError("boom")
        with repro.connect(path) as con:
            assert con.execute("SELECT COUNT(*) FROM t").fetchone() == (0,)

    def test_schema_reflection(self, fixture_connection):
        schema = fixture_connection.schema()
        assert "oldtimer" in schema
        assert schema["oldtimer"] == ["ident", "color", "age"]

    def test_executescript_rejects_preferences(self, connection):
        with pytest.raises(DriverError):
            connection.cursor().executescript(
                "SELECT * FROM t PREFERRING LOWEST(x);"
            )

    def test_executescript_plain(self, connection):
        connection.cursor().executescript(
            "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1);"
        )
        assert connection.execute("SELECT * FROM t").fetchall() == [(1,)]
