"""Documentation executability: fenced code blocks must run.

Every fenced ``sql`` or ``python`` block in README.md and
docs/LANGUAGE.md is executed here — sql against a driver connection
pre-loaded with the paper fixtures, python in a shared namespace per
file — so the documentation can never rot.  Blocks that are not meant to
run (grammar sketches, console transcripts) use ``text``/``console``
fences and are skipped.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

import repro
from repro.workloads.fixtures import load_fixtures

ROOT = Path(__file__).resolve().parent.parent
DOCUMENTED_FILES = (ROOT / "README.md", ROOT / "docs" / "LANGUAGE.md")

_BLOCK = re.compile(r"```(sql|python)[ \t]*\n(.*?)```", re.DOTALL)


def _blocks(path: Path) -> list[tuple[str, str]]:
    return _BLOCK.findall(path.read_text(encoding="utf-8"))


def _sql_statements(block: str):
    for statement in block.split(";"):
        lines = [
            line
            for line in statement.splitlines()
            if line.strip() and not line.strip().startswith("--")
        ]
        if lines:
            yield "\n".join(lines)


@pytest.mark.parametrize(
    "path", DOCUMENTED_FILES, ids=lambda p: str(p.relative_to(ROOT))
)
def test_documented_examples_execute(path):
    blocks = _blocks(path)
    assert blocks, f"{path.name} contains no runnable examples"

    namespace: dict = {}
    connection = repro.connect(":memory:")
    load_fixtures(connection)
    try:
        for index, (language, code) in enumerate(blocks):
            context = f"{path.name} block {index + 1} ({language})"
            if language == "python":
                exec(compile(code, context, "exec"), namespace)  # noqa: S102
            else:
                for statement in _sql_statements(code):
                    cursor = connection.execute(statement)
                    cursor.fetchall()
    finally:
        connection.close()


def test_every_doc_has_both_languages_or_sql():
    # LANGUAGE.md must demonstrate the dialect; README must demonstrate
    # the driver.  Guard the intent, not just the mechanics.
    readme_languages = {language for language, _code in _blocks(DOCUMENTED_FILES[0])}
    language_md_languages = {
        language for language, _code in _blocks(DOCUMENTED_FILES[1])
    }
    assert "python" in readme_languages
    assert "sql" in language_md_languages
