"""Golden-corpus round-trip: parse → print → parse over every production.

``grammar_corpus.sql`` holds one exemplar statement per line.  Each line
must survive ``parse(to_sql(parse(line)))`` with a structurally equal
AST (the printer/parser fixpoint the repo guarantees), and — so the
corpus cannot silently rot as the grammar grows — the statements
together must exercise **every concrete AST node class**, i.e. every
grammar production, including the preference-view statements.
"""

from __future__ import annotations

import dataclasses
import inspect
from pathlib import Path

import pytest

from repro.sql import ast
from repro.sql.parser import parse_statement
from repro.sql.printer import to_sql

CORPUS_PATH = Path(__file__).parent / "grammar_corpus.sql"


def corpus_statements() -> list[str]:
    lines = CORPUS_PATH.read_text(encoding="utf-8").splitlines()
    return [
        line.strip()
        for line in lines
        if line.strip() and not line.strip().startswith("--")
    ]


def walk_all_nodes(node: ast.Node):
    """Every AST node beneath ``node``, via generic dataclass traversal."""
    yield node
    for field in dataclasses.fields(node):
        yield from _walk_value(getattr(node, field.name))


def _walk_value(value):
    if isinstance(value, ast.Node):
        yield from walk_all_nodes(value)
    elif isinstance(value, (tuple, list)):
        for item in value:
            yield from _walk_value(item)


def concrete_node_classes() -> set[type]:
    """All dataclass AST node types (markers like Expr are excluded)."""
    return {
        member
        for _name, member in inspect.getmembers(ast, inspect.isclass)
        if issubclass(member, ast.Node) and dataclasses.is_dataclass(member)
    }


@pytest.mark.parametrize(
    "statement_sql",
    corpus_statements(),
    ids=lambda sql: sql[:48],
)
def test_corpus_round_trips(statement_sql):
    first = parse_statement(statement_sql)
    printed = to_sql(first)
    second = parse_statement(printed)
    assert second == first, f"round-trip changed the AST for: {statement_sql}"
    # And the printer itself is a fixpoint on its own output.
    assert to_sql(second) == printed


def test_corpus_covers_every_grammar_production():
    seen: set[type] = set()
    for statement_sql in corpus_statements():
        for node in walk_all_nodes(parse_statement(statement_sql)):
            seen.add(type(node))
    missing = {cls.__name__ for cls in concrete_node_classes()} - {
        cls.__name__ for cls in seen
    }
    assert not missing, (
        "grammar productions without a corpus exemplar: "
        + ", ".join(sorted(missing))
    )


def test_corpus_covers_every_base_preference_operator():
    # Belt and braces beyond node classes: the POS/NEG single-value forms
    # (`=`/`<>`) and set forms (`IN`/`NOT IN`) print differently, so both
    # spellings must round-trip through the corpus.
    text = " ".join(corpus_statements())
    for fragment in ("PREFERRING", "AROUND", "CASCADE", "ELSE", "BUT ONLY"):
        assert fragment in text
