"""The Preference Definition Language catalog."""

import sqlite3

import pytest

import repro
from repro.errors import CatalogError
from repro.pdl.catalog import CATALOG_TABLE, PreferenceCatalog
from repro.sql import ast
from repro.sql.parser import parse_statement


def create_stmt(text) -> ast.CreatePreference:
    statement = parse_statement(text)
    assert isinstance(statement, ast.CreatePreference)
    return statement


@pytest.fixture
def catalog():
    return PreferenceCatalog(sqlite3.connect(":memory:"))


class TestCrud:
    def test_create_and_get(self, catalog):
        catalog.create(create_stmt("CREATE PREFERENCE p ON t AS LOWEST(x)"))
        entry = catalog.get("p")
        assert entry.table == "t"
        assert entry.definition == "LOWEST(x)"

    def test_names_are_case_insensitive(self, catalog):
        catalog.create(create_stmt("CREATE PREFERENCE MyPref ON t AS LOWEST(x)"))
        assert catalog.get("MYPREF").name == "mypref"

    def test_duplicate_create_raises(self, catalog):
        catalog.create(create_stmt("CREATE PREFERENCE p ON t AS LOWEST(x)"))
        with pytest.raises(CatalogError):
            catalog.create(create_stmt("CREATE PREFERENCE p ON t AS HIGHEST(x)"))

    def test_replace(self, catalog):
        catalog.create(create_stmt("CREATE PREFERENCE p ON t AS LOWEST(x)"))
        catalog.create(
            create_stmt("CREATE PREFERENCE p ON t AS HIGHEST(x)"), replace=True
        )
        assert catalog.get("p").definition == "HIGHEST(x)"

    def test_drop(self, catalog):
        catalog.create(create_stmt("CREATE PREFERENCE p ON t AS LOWEST(x)"))
        catalog.drop("p")
        with pytest.raises(CatalogError):
            catalog.get("p")

    def test_drop_unknown_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.drop("ghost")

    def test_entries_sorted(self, catalog):
        catalog.create(create_stmt("CREATE PREFERENCE zz ON t AS LOWEST(x)"))
        catalog.create(create_stmt("CREATE PREFERENCE aa ON t AS LOWEST(x)"))
        assert [entry.name for entry in catalog.entries()] == ["aa", "zz"]

    def test_resolve_returns_term(self, catalog):
        catalog.create(
            create_stmt("CREATE PREFERENCE p ON t AS x AROUND 14 AND LOWEST(y)")
        )
        term = catalog.resolve("p")
        assert isinstance(term, ast.ParetoPref)


class TestPersistence:
    def test_definitions_survive_reconnect(self, tmp_path):
        path = str(tmp_path / "catalog.sqlite")
        with repro.connect(path) as con:
            con.execute("CREATE TABLE trips (trip_id INTEGER, duration INTEGER)")
            con.execute("INSERT INTO trips VALUES (1, 7), (2, 14)")
            con.execute("CREATE PREFERENCE fortnight ON trips AS duration AROUND 14")
        with repro.connect(path) as con:
            rows = con.execute(
                "SELECT trip_id FROM trips PREFERRING PREFERENCE fortnight"
            ).fetchall()
            assert rows == [(2,)]

    def test_catalog_table_is_plain_sql_visible(self, tmp_path):
        path = str(tmp_path / "catalog.sqlite")
        with repro.connect(path) as con:
            con.execute("CREATE PREFERENCE p ON t AS LOWEST(x)")
            rows = con.execute(
                f"SELECT name, definition FROM {CATALOG_TABLE}"
            ).fetchall()
            assert rows == [("p", "LOWEST(x)")]

    def test_complex_definition_round_trips(self, catalog):
        catalog.create(
            create_stmt(
                "CREATE PREFERENCE complex ON car AS "
                "(category = 'roadster' ELSE category <> 'passenger' "
                "AND price AROUND 40000 AND HIGHEST(power)) "
                "CASCADE color = 'red' CASCADE LOWEST(mileage)"
            )
        )
        term = catalog.resolve("complex")
        assert isinstance(term, ast.CascadePref)
        assert len(term.parts) == 3
