"""Public API surface: everything advertised in __all__ works."""

import repro


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_version():
    assert repro.__version__ == "1.3.0"


def test_error_hierarchy():
    from repro.errors import (
        CatalogError,
        DriverError,
        EvaluationError,
        LexerError,
        NotAStrictPartialOrder,
        ParseError,
        PreferenceConstructionError,
        PreferenceSQLError,
        RewriteError,
        UnsupportedPreferenceSQL,
    )

    for error_type in (
        LexerError,
        ParseError,
        UnsupportedPreferenceSQL,
        PreferenceConstructionError,
        NotAStrictPartialOrder,
        RewriteError,
        EvaluationError,
        CatalogError,
        DriverError,
    ):
        assert issubclass(error_type, PreferenceSQLError)
    assert issubclass(NotAStrictPartialOrder, PreferenceConstructionError)


def test_one_import_end_to_end():
    con = repro.connect(":memory:")
    con.execute("CREATE TABLE t (x INTEGER)")
    con.execute("INSERT INTO t VALUES (1), (5), (9)")
    rows = con.execute("SELECT x FROM t PREFERRING x AROUND 4").fetchall()
    assert rows == [(5,)]
    con.close()


def test_parse_and_print_from_top_level():
    statement = repro.parse_statement("SELECT * FROM t PREFERRING LOWEST(x)")
    assert "PREFERRING" in repro.to_sql(statement)


def test_rewrite_from_top_level():
    statement = repro.parse_statement("SELECT * FROM t PREFERRING LOWEST(x)")
    result = repro.rewrite_statement(statement)
    assert result.rewritten


def test_build_preference_from_top_level():
    preference = repro.build_preference(
        repro.parse_preferring("LOWEST(a) AND HIGHEST(b)")
    )
    assert preference.kind == "PARETO"


def test_engine_from_top_level():
    engine = repro.PreferenceEngine(
        {"t": repro.Relation(columns=("x",), rows=[(1,), (2,)])}
    )
    assert engine.execute("SELECT x FROM t PREFERRING LOWEST(x)").rows == [(1,)]
