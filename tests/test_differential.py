"""Differential testing: the two evaluation paths share one semantics.

DESIGN.md decision 2: the in-memory BMO engine is the executable
specification; the Preference SQL Optimizer's rewrite, executed by sqlite,
must agree with it on every query.  Hypothesis generates random relations
and random preference queries; both paths must return the same multiset of
rows.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

import repro
from repro.engine import PreferenceEngine, Relation
from repro.workloads.fixtures import relation_to_sqlite

COLORS = ["red", "blue", "green", "black", None]
CATEGORIES = ["roadster", "passenger", "van", None]

rows_strategy = st.lists(
    st.tuples(
        st.integers(0, 20),  # price
        st.integers(0, 20),  # mileage
        st.sampled_from(COLORS),
        st.sampled_from(CATEGORIES),
        st.integers(0, 5),  # power
    ),
    min_size=0,
    max_size=25,
)

PREFERRING_CLAUSES = [
    "LOWEST(price)",
    "HIGHEST(power)",
    "price AROUND 10",
    "price BETWEEN 5, 15",
    "color = 'red'",
    "color <> 'black'",
    "color IN ('red', 'blue')",
    "color NOT IN ('red', 'blue')",
    "color = 'red' ELSE color = 'blue'",
    "category = 'roadster' ELSE category <> 'passenger'",
    "LOWEST(price) AND LOWEST(mileage)",
    "LOWEST(price) AND HIGHEST(power)",
    "price AROUND 10 AND color = 'red'",
    "LOWEST(price) CASCADE HIGHEST(power)",
    "color = 'red' CASCADE LOWEST(price) CASCADE LOWEST(mileage)",
    "(LOWEST(price) AND LOWEST(mileage)) CASCADE color = 'red'",
    "EXPLICIT(color, 'red' > 'blue', 'blue' > 'green')",
    "EXPLICIT(color, 'red' > 'blue') AND LOWEST(price)",
    "SCORE(power - price)",
    "price AROUND 10 AND mileage AROUND 10 AND HIGHEST(power)",
]

WHERE_CLAUSES = [None, "price <= 15", "color IS NOT NULL", "power > 0"]

QUERY_SUFFIXES = [
    "",
    " GROUPING category",
    " BUT ONLY DISTANCE(price) <= 5",
]


def both_paths(rows, query):
    """Run one query through the engine and through sqlite; compare."""
    relation = Relation(
        columns=("price", "mileage", "color", "category", "power"), rows=rows
    )
    engine = PreferenceEngine({"items": relation})
    engine_rows = sorted(
        engine.execute(query).rows, key=repr
    )

    con = repro.connect(":memory:")
    try:
        relation_to_sqlite(con, "items", relation)
        sqlite_rows = sorted(con.execute(query).fetchall(), key=repr)
    finally:
        con.close()
    return engine_rows, sqlite_rows


@given(rows=rows_strategy, data=st.data())
@settings(max_examples=120, deadline=None)
def test_engine_and_rewrite_agree(rows, data):
    preferring = data.draw(st.sampled_from(PREFERRING_CLAUSES))
    where = data.draw(st.sampled_from(WHERE_CLAUSES))
    query = "SELECT * FROM items"
    if where:
        query += f" WHERE {where}"
    query += f" PREFERRING {preferring}"
    engine_rows, sqlite_rows = both_paths(rows, query)
    assert engine_rows == sqlite_rows, query


@given(rows=rows_strategy, data=st.data())
@settings(max_examples=60, deadline=None)
def test_engine_and_rewrite_agree_with_grouping_and_threshold(rows, data):
    # GROUPING and BUT ONLY only compose with numeric distance prefs here.
    query = (
        "SELECT * FROM items PREFERRING price AROUND 10 AND LOWEST(mileage)"
        + data.draw(st.sampled_from(QUERY_SUFFIXES))
    )
    engine_rows, sqlite_rows = both_paths(rows, query)
    assert engine_rows == sqlite_rows, query


@given(rows=rows_strategy)
@settings(max_examples=40, deadline=None)
def test_dynamic_optimum_with_grouping_agrees(rows):
    # DISTANCE over LOWEST is data-dependent; with GROUPING the optimum is
    # per partition.  Engine computes it in memory, the rewrite via a
    # correlated MIN sub-query — they must agree.
    query = (
        "SELECT category, price, DISTANCE(price) FROM items "
        "PREFERRING LOWEST(price) GROUPING category"
    )
    engine_rows, sqlite_rows = both_paths(rows, query)
    assert engine_rows == sqlite_rows, query


@given(rows=rows_strategy)
@settings(max_examples=40, deadline=None)
def test_quality_functions_agree(rows):
    query = (
        "SELECT price, color, LEVEL(color), DISTANCE(price), TOP(price) "
        "FROM items PREFERRING color = 'red' ELSE color = 'blue' "
        "AND price AROUND 10"
    )
    engine_rows, sqlite_rows = both_paths(rows, query)
    normalized_engine = [tuple(float(v) if isinstance(v, (int, float)) else v for v in row) for row in engine_rows]
    normalized_sqlite = [tuple(float(v) if isinstance(v, (int, float)) else v for v in row) for row in sqlite_rows]
    assert normalized_engine == normalized_sqlite


@pytest.mark.parametrize(
    "query",
    [
        "SELECT * FROM trips PREFERRING duration AROUND 14",
        "SELECT * FROM apartments PREFERRING HIGHEST(area)",
        "SELECT * FROM programmers PREFERRING exp IN ('java', 'C++')",
        "SELECT * FROM hotels PREFERRING location <> 'downtown'",
        "SELECT * FROM computers PREFERRING HIGHEST(main_memory) AND HIGHEST(cpu_speed)",
        "SELECT * FROM computers PREFERRING HIGHEST(main_memory) CASCADE color IN ('black','brown')",
        "SELECT * FROM car WHERE make = 'Opel' PREFERRING (category = 'roadster' "
        "ELSE category <> 'passenger' AND price AROUND 40000 AND HIGHEST(power)) "
        "CASCADE color = 'red' CASCADE LOWEST(mileage)",
        "SELECT * FROM Cars PREFERRING Make = 'Audi' AND Diesel = 'yes'",
        "SELECT * FROM apartments PREFERRING HIGHEST(area) GROUPING city",
        "SELECT * FROM trips PREFERRING start_day AROUND 184 AND duration AROUND 14 "
        "BUT ONLY DISTANCE(start_day) <= 2 AND DISTANCE(duration) <= 2",
    ],
)
def test_paper_queries_agree_on_fixtures(query, fixture_engine, fixture_connection):
    engine_rows = sorted(fixture_engine.execute(query).rows, key=repr)
    sqlite_rows = sorted(fixture_connection.execute(query).fetchall(), key=repr)
    assert engine_rows == sqlite_rows
