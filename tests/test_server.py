"""The serving layer: shared state, the connection pool, the asyncio server."""

import asyncio
import json
import sqlite3
import threading

import pytest

import repro
from repro.errors import DriverError
from repro.server import (
    ConnectionPool,
    PreferenceClient,
    PreferenceServer,
    ServerError,
    SharedState,
)
from repro.testing import FaultPlan, FaultRule, injected


@pytest.fixture
def database(tmp_path):
    """A file database with a small preference-queryable table."""
    path = str(tmp_path / "server.db")
    connection = repro.connect(path)
    connection.execute(
        "CREATE TABLE offers (offer_id INTEGER, price REAL, rating INTEGER)"
    )
    connection.cursor().executemany(
        "INSERT INTO offers VALUES (?, ?, ?)",
        [(i, float((i * 37) % 500) + 10.0, (i * 13) % 6) for i in range(1, 401)],
    )
    connection.commit()
    connection.close()
    return path


SKYLINE = "SELECT * FROM offers PREFERRING LOWEST(price) AND HIGHEST(rating)"


def serve(coroutine):
    """Run one async test body to completion."""
    return asyncio.run(coroutine)


class TestSharedState:
    def test_epochs_start_at_zero_and_advance(self):
        shared = SharedState()
        assert shared.data_epoch == 0
        assert shared.catalog_epoch == 0
        assert shared.bump_data() == 1
        assert shared.bump_catalog() == 1
        assert (shared.data_epoch, shared.catalog_epoch) == (1, 1)

    def test_attached_connection_reports_shared_epochs(self, database):
        shared = SharedState()
        connection = repro.connect(database, shared=shared)
        before = connection.data_version
        shared.bump_data()
        assert connection.data_version == before + 1
        connection.close()

    def test_own_write_bumps_shared_epoch(self, database):
        shared = SharedState()
        connection = repro.connect(
            database, shared=shared, isolation_level=None
        )
        connection.execute("INSERT INTO offers VALUES (999, 1.0, 5)")
        assert shared.data_epoch >= 1
        connection.close()


class TestConnectionPool:
    def test_rejects_private_memory_database(self):
        with pytest.raises(DriverError, match="shared database"):
            ConnectionPool(":memory:")

    def test_rejects_empty_size(self, database):
        with pytest.raises(DriverError, match="at least one"):
            ConnectionPool(database, size=0)

    def test_checkout_is_exclusive(self, database):
        with ConnectionPool(database, size=1) as pool:
            with pool.connection() as first:
                with pytest.raises(DriverError, match="no pooled connection"):
                    with pool.connection(timeout=0.05):
                        pass
                assert first.execute("SELECT 1").fetchall() == [(1,)]
            # Returned to the queue: the next checkout succeeds.
            with pool.connection(timeout=0.05) as again:
                assert again is first

    def test_pooled_connections_cross_threads(self, database):
        """The satellite bugfix: sqlite's default thread pinning would
        raise ProgrammingError the first time a pooled connection served
        a request on a different thread."""
        pool = ConnectionPool(database, size=2)
        errors: list[Exception] = []

        def worker():
            try:
                for _ in range(5):
                    with pool.connection() as connection:
                        rows = connection.execute(SKYLINE).fetchall()
                        assert rows
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        pool.close()

    def test_write_on_one_connection_visible_to_sibling(self, database):
        with ConnectionPool(database, size=2) as pool:
            with pool.connection() as writer:
                writer.execute("INSERT INTO offers VALUES (1000, 1.5, 5)")
            # LIFO would hand back the same connection; drain it first so
            # the read provably runs on the sibling.
            with pool.connection() as same, pool.connection() as sibling:
                assert same is writer
                rows = sibling.execute(
                    "SELECT * FROM offers WHERE offer_id = 1000"
                ).fetchall()
                assert len(rows) == 1

    def test_plan_cache_is_shared_across_pool(self, database):
        with ConnectionPool(database, size=2) as pool:
            with pool.connection() as a, pool.connection() as b:
                a.execute(SKYLINE).fetchall()
                b.execute(SKYLINE).fetchall()
            stats = pool.shared.plan_cache.stats()
            assert stats.hits >= 1

    def test_session_stats_aggregates(self, database):
        with ConnectionPool(database, size=2) as pool:
            totals = pool.session_stats()
            assert set(totals) >= {"stores", "served"}

    def test_checkout_health_check_replaces_broken_connection(self, database):
        """The tentpole: a connection that dies while pooled is
        discarded and replaced at the next checkout, invisibly."""
        with ConnectionPool(database, size=1) as pool:
            with pool.connection() as victim:
                victim.raw.close()  # dies while checked out
            with pool.connection() as healed:
                assert healed is not victim
                assert healed.execute("SELECT 1").fetchall() == [(1,)]
            assert pool.recycled == 1
            assert pool.stats() == {"size": 1, "free": 1, "recycled": 1}
            assert pool.shared.event_counts()["connection_recycled"] == 1

    def test_close_is_safe_while_connections_checked_out(self, database):
        """The satellite: close() must not yank a connection out from
        under a worker; the late return retires it instead."""
        pool = ConnectionPool(database, size=2)
        with pool.connection() as held:
            pool.close()
            # The held connection keeps working until it is returned.
            assert held.execute("SELECT 1").fetchall() == [(1,)]
            with pytest.raises(DriverError, match="closed"):
                with pool.connection():
                    pass  # pragma: no cover - never handed out
        # Returned after close: the connection was retired, not queued.
        assert pool.stats()["free"] == 0
        with pytest.raises(Exception):
            held.raw.execute("SELECT 1")

    def test_close_is_idempotent(self, database):
        pool = ConnectionPool(database, size=1)
        pool.close()
        pool.close()


class TestCrossSessionInvalidation:
    """The satellite bugfix: ``PRAGMA data_version`` never moves for a
    connection's own writes, so version-stamped caches need the shared
    write epochs to see sibling writes."""

    def test_sibling_dml_invalidates_cached_plan_results(self, database):
        with ConnectionPool(database, size=2) as pool:
            with pool.connection() as a, pool.connection() as b:
                before = sorted(a.execute(SKYLINE).fetchall())
                # A strictly dominating offer: cheapest and best-rated.
                b.execute("INSERT INTO offers VALUES (2000, 0.5, 5)")
                after = sorted(a.execute(SKYLINE).fetchall())
                assert after != before
                assert [row for row in after if row[0] == 2000]

    def test_sibling_ddl_refreshes_schema_cache(self, database):
        with ConnectionPool(database, size=2) as pool:
            with pool.connection() as a, pool.connection() as b:
                a.execute(SKYLINE).fetchall()  # warm a's schema cache
                b.execute("CREATE TABLE extras (x INTEGER, y INTEGER)")
                b.execute("INSERT INTO extras VALUES (1, 2), (3, 1)")
                rows = a.execute(
                    "SELECT * FROM extras PREFERRING LOWEST(y)"
                ).fetchall()
                assert rows == [(3, 1)]

    def test_sibling_catalog_change_is_seen(self, database):
        with ConnectionPool(database, size=2) as pool:
            with pool.connection() as a, pool.connection() as b:
                b.execute(
                    "CREATE PREFERENCE cheap ON offers AS LOWEST(price)"
                )
                rows = a.execute(
                    "SELECT * FROM offers PREFERRING PREFERENCE cheap"
                ).fetchall()
                assert rows
                prices = {row[1] for row in rows}
                assert prices == {min(
                    p for (p,) in a.execute("SELECT price FROM offers").fetchall()
                )}

    def test_sibling_dml_invalidates_statistics(self, database):
        with ConnectionPool(database, size=2) as pool:
            with pool.connection() as a, pool.connection() as b:
                first = a.statistics.for_table("offers")
                b.execute("INSERT INTO offers VALUES (3000, 9.0, 1)")
                second = a.statistics.for_table("offers")
                assert second.row_count == first.row_count + 1

    def test_statistics_entries_shared_across_pool(self, database):
        with ConnectionPool(database, size=2) as pool:
            with pool.connection() as a, pool.connection() as b:
                a.statistics.for_table("offers")
                scans_before = b.statistics.scan_count
                b.statistics.for_table("offers")
                assert b.statistics.scan_count == scans_before


class TestServer:
    def test_ping_query_and_stats(self, database):
        async def body():
            async with PreferenceServer(database, pool_size=2) as server:
                client = await PreferenceClient.connect(
                    server.host, server.port
                )
                assert await client.ping()
                columns, rows = await client.query(SKYLINE)
                assert columns == ["offer_id", "price", "rating"]
                assert rows
                await client.query(SKYLINE)
                stats = await client.stats()
                assert stats["plan_cache"]["hits"] >= 1
                assert stats["admission"]["served"] >= 2
                assert stats["admission"]["errors"] == 0
                await client.close()
                return rows

        rows = serve(body())
        fresh = repro.connect(database)
        expected = [list(row) for row in fresh.execute(SKYLINE).fetchall()]
        fresh.close()
        assert sorted(rows, key=repr) == sorted(expected, key=repr)

    def test_query_error_is_reported_not_fatal(self, database):
        async def body():
            async with PreferenceServer(database, pool_size=1) as server:
                client = await PreferenceClient.connect(
                    server.host, server.port
                )
                with pytest.raises(ServerError, match="nosuch"):
                    await client.query("SELECT * FROM nosuch")
                # The connection survives the error.
                assert await client.ping()
                await client.close()

        serve(body())

    def test_malformed_and_unknown_requests(self, database):
        async def body():
            async with PreferenceServer(database, pool_size=1) as server:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                import json

                for payload in (b"not json\n", b"[1, 2]\n", b'{"op": "bogus"}\n', b'{"op": "query"}\n'):
                    writer.write(payload)
                    await writer.drain()
                    response = json.loads(await reader.readline())
                    assert "error" in response
                writer.close()
                await writer.wait_closed()

        serve(body())

    def test_dml_through_server_bumps_epoch_and_is_visible(self, database):
        async def body():
            async with PreferenceServer(database, pool_size=2) as server:
                client = await PreferenceClient.connect(
                    server.host, server.port
                )
                await client.query(
                    "INSERT INTO offers VALUES (5000, 0.25, 5)"
                )
                stats = await client.stats()
                assert stats["data_epoch"] >= 1
                # Visible regardless of which pooled connection answers.
                for _ in range(4):
                    _columns, rows = await client.query(
                        "SELECT * FROM offers WHERE offer_id = 5000"
                    )
                    assert len(rows) == 1
                await client.close()

        serve(body())

    def test_overload_fast_reject(self, database):
        async def body():
            server = PreferenceServer(
                database, pool_size=1, max_inflight=1, max_queue=0
            )
            release = threading.Event()

            def slow_execute(sql, params, timeout_ms=None):
                release.wait(timeout=5.0)
                return {"columns": [], "rows": []}

            server._execute = slow_execute
            await server.start()
            try:
                slow = await PreferenceClient.connect(server.host, server.port)
                fast = await PreferenceClient.connect(server.host, server.port)
                pending = asyncio.ensure_future(slow.query(SKYLINE))
                # Wait until the slow query actually occupies the slot.
                for _ in range(100):
                    if server._inflight >= 1:
                        break
                    await asyncio.sleep(0.01)
                with pytest.raises(ServerError) as excinfo:
                    await fast.query(SKYLINE)
                assert excinfo.value.overloaded
                release.set()
                await pending
                assert server.rejected == 1
                await slow.close()
                await fast.close()
            finally:
                release.set()
                await server.stop()

        serve(body())

    def test_cancel_while_queued_releases_waiting_slot(self, database):
        """The satellite bugfix: a request cancelled while still queued
        for admission must decrement ``_waiting`` — leaking it slowly
        eats the queue until every client gets fast-rejected."""

        async def body():
            server = PreferenceServer(
                database, pool_size=1, max_inflight=1, max_queue=4
            )
            release = threading.Event()

            def slow_execute(sql, params, timeout_ms=None):
                release.wait(timeout=5.0)
                return {"columns": [], "rows": []}

            server._execute = slow_execute
            await server.start()
            try:
                holder = asyncio.ensure_future(
                    server._dispatch({"sql": SKYLINE})
                )
                for _ in range(100):
                    if server._inflight >= 1:
                        break
                    await asyncio.sleep(0.01)
                queued = asyncio.ensure_future(
                    server._dispatch({"sql": SKYLINE})
                )
                for _ in range(100):
                    if server._waiting >= 1:
                        break
                    await asyncio.sleep(0.01)
                assert server._waiting == 1
                queued.cancel()
                await asyncio.gather(queued, return_exceptions=True)
                assert server._waiting == 0
                release.set()
                await holder
                # The cancelled request was never admitted; the ledger
                # still balances.
                assert server.admitted == (
                    server.served + server.errors + server.cancelled
                )
                assert server._inflight == 0
            finally:
                release.set()
                await server.stop()

        serve(body())

    def test_oversized_request_line_is_bounded(self, database):
        """The satellite: request framing is bounded; an overrun gets a
        structured reply and the connection is dropped, not an
        unbounded buffer or a loop-thread exception."""

        async def body():
            async with PreferenceServer(
                database, pool_size=1, max_line_bytes=1024
            ) as server:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                padding = "x" * 4096
                writer.write(
                    json.dumps({"sql": f"SELECT '{padding}'"}).encode() + b"\n"
                )
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response["code"] == "bad_request"
                assert "exceeds" in response["error"]
                # The server dropped the connection afterwards.
                assert await reader.readline() == b""
                writer.close()
                await writer.wait_closed()
                # The server itself is unharmed.
                client = await PreferenceClient.connect(
                    server.host, server.port
                )
                assert await client.ping()
                await client.close()

        serve(body())

    def test_undecodable_and_scalar_frames(self, database):
        """Wire malice: invalid UTF-8 and JSON scalars where an object
        is expected must produce error replies, never a loop-thread
        exception."""

        async def body():
            async with PreferenceServer(database, pool_size=1) as server:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                for payload in (b"\xff\xfe\x00garbage\n", b"5\n", b'"sql"\n'):
                    writer.write(payload)
                    await writer.drain()
                    response = json.loads(await reader.readline())
                    assert response["code"] == "bad_request"
                writer.close()
                await writer.wait_closed()

        serve(body())

    def test_unserialisable_reply_degrades_to_error(self, database):
        async def body():
            async with PreferenceServer(database, pool_size=1) as server:
                server._execute = lambda sql, params, timeout_ms=None: {
                    "columns": ["x"],
                    "rows": [[object()]],
                }
                client = await PreferenceClient.connect(
                    server.host, server.port
                )
                with pytest.raises(ServerError, match="not serialisable"):
                    await client.query(SKYLINE)
                await client.close()

        serve(body())

    def test_disconnect_between_request_and_reply(self, database):
        async def body():
            async with PreferenceServer(database, pool_size=1) as server:
                _reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                writer.write(json.dumps({"sql": SKYLINE}).encode() + b"\n")
                await writer.drain()
                writer.close()  # gone before the reply can be written
                await writer.wait_closed()
                for _ in range(200):
                    if server.admitted and server._inflight == 0:
                        break
                    await asyncio.sleep(0.01)
                assert server.admitted == (
                    server.served + server.errors + server.cancelled
                )
                # A fresh client still gets served.
                client = await PreferenceClient.connect(
                    server.host, server.port
                )
                _columns, rows = await client.query(SKYLINE)
                assert rows
                await client.close()

        serve(body())

    def test_double_stop_is_idempotent(self, database):
        async def body():
            server = PreferenceServer(database, pool_size=1)
            await server.start()
            await server.stop()
            await server.stop()

        serve(body())

    def test_invalid_timeout_ms_is_a_bad_request(self, database):
        async def body():
            async with PreferenceServer(database, pool_size=1) as server:
                client = await PreferenceClient.connect(
                    server.host, server.port
                )
                for bad in ("soon", -5, 0, True):
                    with pytest.raises(ServerError) as excinfo:
                        await client._roundtrip(
                            {"op": "query", "sql": SKYLINE, "timeout_ms": bad}
                        )
                    assert excinfo.value.code == "bad_request"
                    assert not excinfo.value.retryable
                await client.close()

        serve(body())

    def test_timeout_surfaces_retryable_over_the_wire(self, database):
        async def body():
            plan = FaultPlan(
                [FaultRule("server.slow_query", times=1, delay=0.4)]
            )
            async with PreferenceServer(database, pool_size=1) as server:
                client = await PreferenceClient.connect(
                    server.host, server.port
                )
                with injected(plan):
                    with pytest.raises(ServerError) as excinfo:
                        await client.query(SKYLINE, timeout_ms=100)
                assert excinfo.value.code == "timeout"
                assert excinfo.value.retryable is True
                # Worker and pooled connection both reclaimed.
                _columns, rows = await client.query(SKYLINE)
                assert rows
                await client.close()
                assert server.pool.stats()["free"] == server.pool.size

        serve(body())

    def test_client_retries_transient_errors(self, database):
        async def body():
            plan = FaultPlan(
                [
                    FaultRule(
                        "driver.execute",
                        times=2,
                        error=lambda: sqlite3.OperationalError(
                            "transient failure"
                        ),
                    )
                ]
            )
            async with PreferenceServer(database, pool_size=1) as server:
                client = await PreferenceClient.connect(
                    server.host, server.port
                )
                with injected(plan):
                    _columns, rows = await client.query(
                        SKYLINE, retries=3, backoff=0.01
                    )
                assert rows
                assert client.retries_used == 2
                # Without retries the same failure surfaces structured.
                plan_again = FaultPlan(
                    [
                        FaultRule(
                            "driver.execute",
                            times=1,
                            error=lambda: sqlite3.OperationalError("again"),
                        )
                    ]
                )
                with injected(plan_again):
                    with pytest.raises(ServerError) as excinfo:
                        await client.query(SKYLINE)
                assert excinfo.value.code == "database"
                assert excinfo.value.retryable is True
                await client.close()

        serve(body())

    def test_concurrent_clients_agree_with_fresh_connection(self, database):
        async def body():
            async with PreferenceServer(database, pool_size=3) as server:
                async def one_client():
                    client = await PreferenceClient.connect(
                        server.host, server.port
                    )
                    try:
                        results = []
                        for _ in range(3):
                            _columns, rows = await client.query(SKYLINE)
                            results.append(sorted(rows, key=repr))
                        return results
                    finally:
                        await client.close()

                gathered = await asyncio.gather(
                    *(one_client() for _ in range(6))
                )
                return [rows for results in gathered for rows in results]

        all_results = serve(body())
        fresh = repro.connect(database)
        expected = sorted(
            ([list(row) for row in fresh.execute(SKYLINE).fetchall()]),
            key=repr,
        )
        fresh.close()
        assert all(result == expected for result in all_results)
