"""The fault-injection harness itself: schedules, determinism, bookkeeping."""

import threading

import pytest

from repro.testing import FaultPlan, FaultRule, faults, fire, injected, install, uninstall


class Boom(RuntimeError):
    pass


class TestFaultRuleSchedule:
    def test_counted_schedule_times_skip_every(self):
        plan = FaultPlan([FaultRule("p", times=2, skip=1, every=2)])
        # call 1: skipped; calls 2 and 4 fire; call 6 exhausted (times=2).
        outcomes = [plan.fire("p", {}) for _ in range(6)]
        assert outcomes == [False, True, False, True, False, False]

    def test_unlimited_times(self):
        plan = FaultPlan([FaultRule("p", times=None)])
        assert all(plan.fire("p", {}) for _ in range(5))

    def test_probability_replays_identically_for_a_seed(self):
        def draw():
            plan = FaultPlan(
                [FaultRule("p", times=None, probability=0.5)], seed=42
            )
            return [plan.fire("p", {}) for _ in range(64)]

        first, second = draw(), draw()
        assert first == second
        assert True in first and False in first

    def test_rules_match_their_point_only(self):
        plan = FaultPlan([FaultRule("a", times=None)])
        assert plan.fire("a", {})
        assert not plan.fire("b", {})

    def test_error_factory_raises_fresh_instances(self):
        plan = FaultPlan([FaultRule("p", times=2, error=Boom)])
        with pytest.raises(Boom) as first:
            plan.fire("p", {})
        with pytest.raises(Boom) as second:
            plan.fire("p", {})
        assert first.value is not second.value

    def test_action_receives_the_context(self):
        seen = {}
        plan = FaultPlan([FaultRule("p", action=seen.update)])
        plan.fire("p", {"sql": "SELECT 1"})
        assert seen == {"sql": "SELECT 1"}

    def test_hits_and_fires_bookkeeping(self):
        plan = FaultPlan([FaultRule("p", times=1)])
        plan.fire("p", {})
        plan.fire("p", {})
        plan.fire("q", {})
        assert plan.hits == {"p": 2, "q": 1}
        assert plan.fires == {"p": 1}

    def test_first_matching_rule_wins(self):
        order = []
        plan = FaultPlan(
            [
                FaultRule("p", times=1, action=lambda c: order.append("first")),
                FaultRule("p", times=None, action=lambda c: order.append("second")),
            ]
        )
        plan.fire("p", {})
        plan.fire("p", {})
        assert order == ["first", "second"]

    def test_plan_is_thread_safe(self):
        plan = FaultPlan([FaultRule("p", times=None)])
        fired = []

        def caller():
            fired.append(sum(plan.fire("p", {}) for _ in range(100)))

        threads = [threading.Thread(target=caller) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert plan.hits["p"] == 400
        assert plan.fires["p"] == 400


class TestModuleHooks:
    def test_fire_is_inert_without_a_plan(self):
        uninstall()
        assert fire("anything") is False

    def test_install_uninstall(self):
        plan = FaultPlan([FaultRule("driver.execute", times=None)])
        install(plan)
        try:
            assert fire("driver.execute")
        finally:
            uninstall()
        assert not fire("driver.execute")

    def test_injected_scopes_the_plan(self):
        with injected(FaultPlan([FaultRule("driver.execute", times=None)])) as plan:
            assert fire("driver.execute", sql="x")
            assert plan.hits["driver.execute"] == 1
        assert not fire("driver.execute")

    def test_injected_uninstalls_on_error(self):
        with pytest.raises(Boom):
            with injected(FaultPlan([FaultRule("driver.execute", error=Boom)])):
                fire("driver.execute")
        assert faults._plan is None

    def test_fire_rejects_undeclared_points_when_a_plan_is_installed(self):
        # The POINTS registry is the single source of truth: a typo'd
        # point name must fail loudly instead of sitting inert forever.
        with injected(FaultPlan([FaultRule("driver.execute")])):
            with pytest.raises(ValueError, match="undeclared fault injection"):
                fire("driver.exceute")
        # Without a plan the fast path stays a single None check and
        # never validates — zero cost in production.
        assert fire("driver.exceute") is False

    def test_every_declared_point_names_its_firer(self):
        assert set(faults.POINTS.values()) <= {"production", "client"}

    def test_add_races_fire_without_corruption(self):
        # Pins the FaultPlan.add lock: rules appended while other threads
        # iterate the rule list inside fire() must neither crash nor lose
        # bookkeeping (prefcheck's lock-discipline rule guards this).
        plan = FaultPlan([FaultRule("driver.execute", times=None)])
        stop = threading.Event()

        def adder():
            while not stop.is_set():
                plan.add(FaultRule("pool.checkout", times=0))

        thread = threading.Thread(target=adder)
        thread.start()
        try:
            for _ in range(2000):
                assert plan.fire("driver.execute", {})
        finally:
            stop.set()
            thread.join()
        assert plan.hits["driver.execute"] == 2000
        assert plan.fires["driver.execute"] == 2000
