"""Layered (POS/NEG/ELSE) and EXPLICIT preference semantics."""

import pytest

from repro.errors import NotAStrictPartialOrder, PreferenceConstructionError
from repro.model.builder import build_preference
from repro.model.categorical import OTHERS, ExplicitPreference, LayeredPreference, neg, pos
from repro.sql import ast
from repro.sql.parser import parse_preferring

COL = ast.Column(name="color")


class TestPos:
    def test_members_are_level_zero(self):
        pref = pos(COL, {"java", "C++"})
        assert pref.level(("java",)) == 0
        assert pref.level(("C++",)) == 0
        assert pref.level(("perl",)) == 1

    def test_dominance(self):
        pref = pos(COL, {"java"})
        assert pref.is_better(("java",), ("perl",))
        assert not pref.is_better(("perl",), ("java",))
        assert pref.is_equal(("perl",), ("cobol",))

    def test_null_falls_into_others(self):
        pref = pos(COL, {"java"})
        assert pref.level((None,)) == 1


class TestNeg:
    def test_disliked_values_are_worst(self):
        pref = neg(COL, {"downtown"})
        assert pref.level(("suburb",)) == 0
        assert pref.level(("downtown",)) == 1
        assert pref.is_better(("suburb",), ("downtown",))

    def test_null_is_not_disliked(self):
        # NULL equals nothing in SQL, so it cannot match the NEG set;
        # it lands in OTHERS, which for NEG is the *good* layer.
        pref = neg(COL, {"downtown"})
        assert pref.level((None,)) == 0


class TestElseComposition:
    def test_pos_pos(self):
        pref = build_preference(parse_preferring("color = 'white' ELSE color = 'yellow'"))
        assert isinstance(pref, LayeredPreference)
        assert pref.level(("white",)) == 0
        assert pref.level(("yellow",)) == 1
        assert pref.level(("red",)) == 2

    def test_pos_neg(self):
        pref = build_preference(
            parse_preferring("category = 'roadster' ELSE category <> 'passenger'")
        )
        assert pref.level(("roadster",)) == 0
        assert pref.level(("van",)) == 1
        assert pref.level(("passenger",)) == 2

    def test_neg_pos(self):
        pref = build_preference(
            parse_preferring("a <> 'bad' ELSE a = 'good'")
        )
        # avoid 'bad' above all; among the rest prefer 'good'
        assert pref.level(("good",)) == 0
        assert pref.level(("other",)) == 1
        assert pref.level(("bad",)) == 2

    def test_three_way_chain(self):
        pref = build_preference(
            parse_preferring("c = 'a' ELSE c = 'b' ELSE c = 'd'")
        )
        assert pref.level(("a",)) == 0
        assert pref.level(("b",)) == 1
        assert pref.level(("d",)) == 2
        assert pref.level(("z",)) == 3

    def test_cross_attribute_chain(self):
        pref = build_preference(
            parse_preferring("color = 'red' ELSE brand = 'BMW'")
        )
        assert pref.arity == 2
        assert pref.level(("red", "Audi")) == 0
        assert pref.level(("blue", "BMW")) == 1
        assert pref.level(("blue", "Audi")) == 2

    def test_value_in_both_layers_takes_first(self):
        pref = build_preference(
            parse_preferring("c IN ('a', 'b') ELSE c IN ('b', 'd')")
        )
        assert pref.level(("b",)) == 0

    def test_else_rejects_numeric_preferences(self):
        with pytest.raises(PreferenceConstructionError):
            build_preference(parse_preferring("LOWEST(a) ELSE a = 1"))


class TestLayeredValidation:
    def test_needs_exactly_one_others(self):
        with pytest.raises(PreferenceConstructionError):
            LayeredPreference([COL], [(0, frozenset({"a"}))])
        with pytest.raises(PreferenceConstructionError):
            LayeredPreference([COL], [OTHERS, OTHERS])

    def test_rejects_empty_bucket(self):
        with pytest.raises(PreferenceConstructionError):
            LayeredPreference([COL], [(0, frozenset()), OTHERS])

    def test_rejects_bad_operand_index(self):
        with pytest.raises(PreferenceConstructionError):
            LayeredPreference([COL], [(1, frozenset({"a"})), OTHERS])

    def test_rejects_missing_operand(self):
        with pytest.raises(PreferenceConstructionError):
            LayeredPreference([], [OTHERS])


class TestExplicit:
    def make(self):
        return ExplicitPreference(
            COL, [("red", "blue"), ("blue", "green"), ("red", "black")]
        )

    def test_direct_pairs(self):
        pref = self.make()
        assert pref.is_better(("red",), ("blue",))
        assert pref.is_better(("red",), ("black",))

    def test_transitive_closure(self):
        pref = self.make()
        assert pref.is_better(("red",), ("green",))

    def test_asymmetry(self):
        pref = self.make()
        assert not pref.is_better(("green",), ("red",))

    def test_unmentioned_values_incomparable(self):
        pref = self.make()
        assert not pref.is_better(("red",), ("purple",))
        assert not pref.is_better(("purple",), ("green",))

    def test_equality_is_value_identity(self):
        pref = self.make()
        assert pref.is_equal(("purple",), ("purple",))
        assert not pref.is_equal(("red",), ("blue",))

    def test_null_never_equal(self):
        pref = self.make()
        assert not pref.is_equal((None,), (None,))
        assert not pref.is_better((None,), ("green",))

    def test_levels_follow_dag_depth(self):
        pref = self.make()
        assert pref.level("red") == 0
        assert pref.level("blue") == 1
        assert pref.level("black") == 1
        assert pref.level("green") == 2
        assert pref.level("purple") == 3  # unmentioned: worst + 1

    def test_cycle_rejected(self):
        with pytest.raises(NotAStrictPartialOrder):
            ExplicitPreference(COL, [("a", "b"), ("b", "a")])

    def test_long_cycle_rejected(self):
        with pytest.raises(NotAStrictPartialOrder):
            ExplicitPreference(COL, [("a", "b"), ("b", "c"), ("c", "a")])

    def test_reflexive_pair_rejected(self):
        with pytest.raises(NotAStrictPartialOrder):
            ExplicitPreference(COL, [("a", "a")])

    def test_empty_pairs_rejected(self):
        with pytest.raises(PreferenceConstructionError):
            ExplicitPreference(COL, [])

    def test_closure_pairs_exposed(self):
        pref = self.make()
        assert ("red", "green") in pref.closure_pairs

    def test_depth_map_and_max_depth(self):
        pref = self.make()
        assert pref.depth_map["red"] == 0
        assert pref.max_depth == 2
