"""The Preference SQL Optimizer: rewriting correctness and SQL shape."""

import pytest

from repro.errors import RewriteError
from repro.rewrite.planner import rewrite_select, rewrite_statement
from repro.sql.parser import parse_statement
from repro.sql.printer import to_sql


def rewrite_text(query, schema=None):
    result = rewrite_select(parse_statement(query), schema=schema)
    assert result.rewritten
    return to_sql(result.statement)


@pytest.fixture
def con(fixture_connection):
    return fixture_connection


class TestPassThrough:
    def test_plain_select_untouched(self):
        statement = parse_statement("SELECT * FROM t WHERE a = 1")
        result = rewrite_select(statement)
        assert not result.rewritten
        assert result.statement is statement

    def test_plain_insert_untouched(self):
        statement = parse_statement("INSERT INTO t VALUES (1)")
        result = rewrite_statement(statement)
        assert not result.rewritten


class TestShape:
    def test_not_exists_anti_join(self):
        sql = rewrite_text("SELECT * FROM cars PREFERRING LOWEST(price)")
        assert "NOT EXISTS" in sql
        assert "cars AS cars_d" in sql

    def test_pareto_shape_matches_paper(self):
        # <= on every component, < on at least one (section 3.2).
        sql = rewrite_text(
            "SELECT * FROM Cars PREFERRING Make = 'Audi' AND Diesel = 'yes'"
        )
        assert sql.count("<=") == 2
        assert sql.count("<") >= 4  # two <= plus two strict <
        assert "CASE WHEN" in sql

    def test_where_appears_on_both_copies(self):
        sql = rewrite_text(
            "SELECT * FROM cars WHERE make = 'Opel' PREFERRING LOWEST(price)"
        )
        assert "WHERE make = 'Opel'" in sql
        assert "cars_d.make = 'Opel'" in sql
        assert sql.count("'Opel'") == 2

    def test_grouping_is_null_safe(self):
        sql = rewrite_text(
            "SELECT * FROM cars PREFERRING LOWEST(price) GROUPING color"
        )
        assert "cars_d.color = cars.color" in sql
        assert "cars_d.color IS NULL AND cars.color IS NULL" in sql

    def test_but_only_on_both_copies(self):
        sql = rewrite_text(
            "SELECT * FROM cars PREFERRING price AROUND 100 "
            "BUT ONLY DISTANCE(price) <= 10"
        )
        # threshold once on the dominator copy, once on the candidate.
        assert sql.count("<= 10") == 2

    def test_alias_collision_avoided(self):
        sql = rewrite_text("SELECT * FROM cars AS cars_d PREFERRING LOWEST(price)")
        assert "cars_d_d" in sql

    def test_order_by_and_limit_preserved(self):
        sql = rewrite_text(
            "SELECT * FROM cars PREFERRING LOWEST(price) ORDER BY price LIMIT 3"
        )
        assert sql.endswith("ORDER BY price LIMIT 3")

    def test_cascade_lexicographic_expansion(self):
        sql = rewrite_text(
            "SELECT * FROM cars PREFERRING LOWEST(price) CASCADE LOWEST(mileage)"
        )
        # better1 OR (equal1 AND better2)
        assert " OR " in sql
        assert sql.count("CASE WHEN") >= 4

    def test_explicit_closure_disjunction(self):
        sql = rewrite_text(
            "SELECT * FROM cars PREFERRING "
            "EXPLICIT(color, 'red' > 'blue', 'blue' > 'green')"
        )
        # The transitive pair red > green must be in the condition.
        assert "'red'" in sql and "'green'" in sql
        assert sql.count("AND") >= 3

    def test_rewritten_sql_is_plain_sql(self):
        sql = rewrite_text("SELECT * FROM cars PREFERRING LOWEST(price)")
        reparsed = parse_statement(sql)
        assert not reparsed.is_preference_query


class TestValidation:
    def test_group_by_with_preferring_rejected(self):
        with pytest.raises(RewriteError):
            rewrite_text(
                "SELECT color FROM cars PREFERRING LOWEST(price) GROUP BY color"
            )

    def test_unbound_parameters_rejected(self):
        with pytest.raises(RewriteError):
            rewrite_text("SELECT * FROM cars WHERE make = ? PREFERRING LOWEST(price)")

    def test_derived_table_rejected(self):
        with pytest.raises(RewriteError):
            rewrite_text(
                "SELECT * FROM (SELECT * FROM cars) AS s PREFERRING LOWEST(price)"
            )

    def test_duplicate_binding_rejected(self):
        with pytest.raises(RewriteError):
            rewrite_text("SELECT * FROM cars, cars PREFERRING LOWEST(price)")

    def test_multi_table_needs_schema_for_unqualified(self):
        with pytest.raises(RewriteError):
            rewrite_text(
                "SELECT * FROM cars, dealers WHERE cars.dealer_id = dealers.id "
                "PREFERRING LOWEST(price)"
            )

    def test_multi_table_with_schema_resolves(self):
        schema = {"cars": ["id", "price", "dealer_id"], "dealers": ["id", "city"]}
        sql = rewrite_text(
            "SELECT * FROM cars, dealers WHERE cars.dealer_id = dealers.id "
            "PREFERRING LOWEST(price)",
            schema=schema,
        )
        assert "cars_d" in sql and "dealers_d" in sql

    def test_ambiguous_column_with_schema_rejected(self):
        schema = {"a": ["x"], "b": ["x"]}
        with pytest.raises(RewriteError):
            rewrite_text("SELECT * FROM a, b PREFERRING LOWEST(x)", schema=schema)

    def test_unknown_qualifier_rejected(self):
        with pytest.raises(RewriteError):
            rewrite_text("SELECT * FROM cars PREFERRING LOWEST(nothere.price)")


class TestExecutionOnSqlite:
    """The rewritten SQL must produce the BMO answer on the host database."""

    def test_paper_cars(self, con):
        rows = con.execute(
            "SELECT * FROM Cars PREFERRING Make = 'Audi' AND Diesel = 'yes'"
        ).fetchall()
        assert sorted(row[0] for row in rows) == [1, 2]

    def test_paper_oldtimer(self, con):
        rows = con.execute(
            "SELECT ident, color, age, LEVEL(color), DISTANCE(age) FROM oldtimer "
            "PREFERRING color = 'white' ELSE color = 'yellow' AND age AROUND 40"
        ).fetchall()
        assert set(rows) == {
            ("Selma", "red", 40, 3, 0),
            ("Homer", "yellow", 35, 2, 5),
            ("Maggie", "white", 19, 1, 21),
        }

    def test_grouping_on_sqlite(self, con):
        rows = con.execute(
            "SELECT city, apartment_id FROM apartments "
            "PREFERRING HIGHEST(area) GROUPING city"
        ).fetchall()
        assert {row[1] for row in rows} == {2, 3, 5}

    def test_but_only_on_sqlite(self, con):
        rows = con.execute(
            "SELECT trip_id FROM trips "
            "PREFERRING start_day AROUND 184 AND duration AROUND 14 "
            "BUT ONLY DISTANCE(start_day) <= 2 AND DISTANCE(duration) <= 2"
        ).fetchall()
        assert {row[0] for row in rows} == {7}

    def test_dynamic_top_on_sqlite(self, con):
        rows = con.execute(
            "SELECT apartment_id, TOP(area) FROM apartments "
            "WHERE city = 'Augsburg' PREFERRING HIGHEST(area)"
        ).fetchall()
        assert set(rows) == {(2, 1), (3, 1)}

    def test_dynamic_distance_with_grouping(self, con):
        rows = con.execute(
            "SELECT city, apartment_id, DISTANCE(area) FROM apartments "
            "PREFERRING HIGHEST(area) GROUPING city"
        ).fetchall()
        assert all(row[2] == 0 for row in rows)

    def test_insert_select_preferring(self, con):
        con.execute(
            "CREATE TABLE best_cars (Identifier INTEGER, Make TEXT, Model TEXT, "
            "Price INTEGER, Mileage INTEGER, Airbag TEXT, Diesel TEXT)"
        )
        con.execute(
            "INSERT INTO best_cars SELECT * FROM Cars "
            "PREFERRING Make = 'Audi' AND Diesel = 'yes'"
        )
        rows = con.execute("SELECT Identifier FROM best_cars").fetchall()
        assert sorted(row[0] for row in rows) == [1, 2]

    def test_contains_on_sqlite(self, connection):
        connection.execute("CREATE TABLE rooms (id INTEGER, description TEXT)")
        connection.cursor().executemany(
            "INSERT INTO rooms VALUES (?, ?)",
            [
                (1, "quiet room with balcony"),
                (2, "room with balcony"),
                (3, "noisy room"),
            ],
        )
        rows = connection.execute(
            "SELECT id FROM rooms PREFERRING description CONTAINS 'quiet balcony'"
        ).fetchall()
        assert rows == [(1,)]

    def test_explicit_on_sqlite(self, connection):
        connection.execute("CREATE TABLE shirts (id INTEGER, color TEXT)")
        connection.cursor().executemany(
            "INSERT INTO shirts VALUES (?, ?)",
            [(1, "red"), (2, "blue"), (3, "green"), (4, "purple")],
        )
        rows = connection.execute(
            "SELECT id FROM shirts PREFERRING "
            "EXPLICIT(color, 'red' > 'blue', 'blue' > 'green')"
        ).fetchall()
        assert {row[0] for row in rows} == {1, 4}

    def test_join_preference_query(self, connection):
        connection.execute("CREATE TABLE cars (id INTEGER, dealer_id INTEGER, price INTEGER)")
        connection.execute("CREATE TABLE dealers (id INTEGER, city TEXT)")
        connection.cursor().executemany(
            "INSERT INTO cars VALUES (?, ?, ?)",
            [(1, 1, 100), (2, 1, 200), (3, 2, 150)],
        )
        connection.cursor().executemany(
            "INSERT INTO dealers VALUES (?, ?)", [(1, "Augsburg"), (2, "Munich")]
        )
        rows = connection.execute(
            "SELECT cars.id FROM cars JOIN dealers ON cars.dealer_id = dealers.id "
            "WHERE dealers.city = 'Augsburg' PREFERRING LOWEST(cars.price)"
        ).fetchall()
        assert rows == [(1,)]

    def test_nulls_never_dominate(self, connection):
        connection.execute("CREATE TABLE t (id INTEGER, x INTEGER)")
        connection.cursor().executemany(
            "INSERT INTO t VALUES (?, ?)", [(1, None), (2, 5), (3, 7)]
        )
        rows = connection.execute(
            "SELECT id FROM t PREFERRING LOWEST(x)"
        ).fetchall()
        assert rows == [(2,)]

    def test_all_null_candidates_survive(self, connection):
        connection.execute("CREATE TABLE t (id INTEGER, x INTEGER)")
        connection.cursor().executemany(
            "INSERT INTO t VALUES (?, ?)", [(1, None), (2, None)]
        )
        rows = connection.execute("SELECT id FROM t PREFERRING LOWEST(x)").fetchall()
        assert {row[0] for row in rows} == {1, 2}
