"""Expression evaluator: SQL three-valued logic and value semantics."""

import pytest

from repro.engine.expressions import Evaluator, RowEnvironment
from repro.errors import EvaluationError
from repro.sql.parser import parse_expression


def evaluate(text, params=(), **columns):
    env = RowEnvironment.single("t", list(columns), list(columns.values()))
    return Evaluator(params=params).evaluate(parse_expression(text), env)


class TestArithmetic:
    def test_basic(self):
        assert evaluate("1 + 2 * 3") == 7
        assert evaluate("(1 + 2) * 3") == 9
        assert evaluate("10 - 4 - 3") == 3
        assert evaluate("7 % 4") == 3.0

    def test_integer_division_truncates_toward_zero(self):
        assert evaluate("7 / 2") == 3
        assert evaluate("-7 / 2") == -3

    def test_float_division(self):
        assert evaluate("7.0 / 2") == 3.5

    def test_division_by_zero_is_null(self):
        assert evaluate("1 / 0") is None
        assert evaluate("1 % 0") is None

    def test_unary_minus(self):
        assert evaluate("-x", x=5) == -5

    def test_null_propagates(self):
        assert evaluate("x + 1", x=None) is None
        assert evaluate("-x", x=None) is None

    def test_concat(self):
        assert evaluate("'a' || 'b'") == "ab"
        assert evaluate("'a' || x", x=None) is None

    def test_non_numeric_arithmetic_raises(self):
        with pytest.raises(EvaluationError):
            evaluate("'a' + 1")


class TestComparisons:
    def test_numbers(self):
        assert evaluate("1 < 2") is True
        assert evaluate("2 <= 2") is True
        assert evaluate("3 = 3.0") is True
        assert evaluate("3 <> 4") is True

    def test_strings(self):
        assert evaluate("'abc' < 'abd'") is True
        assert evaluate("'a' = 'a'") is True

    def test_null_comparison_is_unknown(self):
        assert evaluate("x = 1", x=None) is None
        assert evaluate("x <> 1", x=None) is None
        assert evaluate("1 < x", x=None) is None

    def test_numeric_string_coercion(self):
        assert evaluate("x = 42", x="42") is True

    def test_incomparable_types_raise(self):
        with pytest.raises(EvaluationError):
            evaluate("x < 1", x="abc")


class TestThreeValuedLogic:
    def test_and_truth_table(self):
        assert evaluate("TRUE AND TRUE") is True
        assert evaluate("TRUE AND FALSE") is False
        assert evaluate("FALSE AND x = 1", x=None) is False  # short circuit
        assert evaluate("TRUE AND x = 1", x=None) is None
        assert evaluate("x = 1 AND FALSE", x=None) is False

    def test_or_truth_table(self):
        assert evaluate("FALSE OR TRUE") is True
        assert evaluate("FALSE OR FALSE") is False
        assert evaluate("TRUE OR x = 1", x=None) is True
        assert evaluate("FALSE OR x = 1", x=None) is None

    def test_not(self):
        assert evaluate("NOT TRUE") is False
        assert evaluate("NOT x = 1", x=None) is None

    def test_is_true_rejects_unknown(self):
        env = RowEnvironment.single("t", ["x"], [None])
        evaluator = Evaluator()
        assert evaluator.is_true(parse_expression("x = 1"), env) is False
        assert evaluator.is_true(parse_expression("1 = 1"), env) is True


class TestPredicates:
    def test_in_list(self):
        assert evaluate("2 IN (1, 2, 3)") is True
        assert evaluate("5 IN (1, 2, 3)") is False
        assert evaluate("5 NOT IN (1, 2, 3)") is True

    def test_in_list_null_semantics(self):
        assert evaluate("x IN (1, 2)", x=None) is None
        assert evaluate("1 IN (1, x)", x=None) is True
        assert evaluate("5 IN (1, x)", x=None) is None  # could be 5

    def test_between(self):
        assert evaluate("5 BETWEEN 1 AND 10") is True
        assert evaluate("0 BETWEEN 1 AND 10") is False
        assert evaluate("0 NOT BETWEEN 1 AND 10") is True
        assert evaluate("x BETWEEN 1 AND 10", x=None) is None

    def test_is_null(self):
        assert evaluate("x IS NULL", x=None) is True
        assert evaluate("x IS NULL", x=1) is False
        assert evaluate("x IS NOT NULL", x=1) is True

    def test_like(self):
        assert evaluate("'Johnson' LIKE '%son'") is True
        assert evaluate("'Johnson' LIKE 'J_hnson'") is True
        assert evaluate("'Johnson' LIKE 'son'") is False
        assert evaluate("'JOHNSON' LIKE '%son%'") is True  # case-insensitive
        assert evaluate("x LIKE '%a%'", x=None) is None

    def test_like_escapes_regex_chars(self):
        assert evaluate("'a.c' LIKE 'a.c'") is True
        assert evaluate("'abc' LIKE 'a.c'") is False

    def test_case_when(self):
        assert evaluate("CASE WHEN 1 = 1 THEN 'yes' ELSE 'no' END") == "yes"
        assert evaluate("CASE WHEN 1 = 2 THEN 'yes' ELSE 'no' END") == "no"
        assert evaluate("CASE WHEN 1 = 2 THEN 'yes' END") is None
        assert evaluate("CASE WHEN x = 1 THEN 'a' WHEN x = 2 THEN 'b' END", x=2) == "b"

    def test_case_unknown_condition_skips_branch(self):
        assert evaluate("CASE WHEN x = 1 THEN 'a' ELSE 'b' END", x=None) == "b"


class TestFunctions:
    def test_abs(self):
        assert evaluate("ABS(-5)") == 5
        assert evaluate("ABS(x)", x=None) is None

    def test_length_upper_lower(self):
        assert evaluate("LENGTH('abc')") == 3
        assert evaluate("UPPER('ab')") == "AB"
        assert evaluate("LOWER('AB')") == "ab"

    def test_round(self):
        assert evaluate("ROUND(2.567, 1)") == 2.6
        assert evaluate("ROUND(2.5)") == 2

    def test_coalesce(self):
        assert evaluate("COALESCE(x, 7)", x=None) == 7
        assert evaluate("COALESCE(x, 7)", x=3) == 3

    def test_scalar_min_max(self):
        assert evaluate("MIN(3, 1, 2)") == 1
        assert evaluate("MAX(3, 1, 2)") == 3
        assert evaluate("MIN(3, x)", x=None) is None

    def test_unknown_function_raises(self):
        with pytest.raises(EvaluationError):
            evaluate("FROBNICATE(1)")

    def test_quality_function_outside_preference_query_raises(self):
        with pytest.raises(EvaluationError):
            evaluate("LEVEL(x)", x=1)


class TestEnvironment:
    def test_qualified_lookup(self):
        env = RowEnvironment.single("cars", ["price"], [100])
        evaluator = Evaluator()
        assert evaluator.evaluate(parse_expression("cars.price"), env) == 100

    def test_unknown_column_raises(self):
        with pytest.raises(EvaluationError):
            evaluate("nope")

    def test_unknown_table_raises(self):
        with pytest.raises(EvaluationError):
            evaluate("other.x", x=1)

    def test_ambiguous_column_raises(self):
        env = RowEnvironment.single("a", ["x"], [1]).merged(
            RowEnvironment.single("b", ["x"], [2])
        )
        with pytest.raises(EvaluationError):
            Evaluator().evaluate(parse_expression("x"), env)

    def test_merged_duplicate_binding_raises(self):
        env = RowEnvironment.single("a", ["x"], [1])
        with pytest.raises(EvaluationError):
            env.merged(RowEnvironment.single("a", ["y"], [2]))

    def test_params(self):
        assert evaluate("? + ?", params=(1, 2)) == 3

    def test_missing_param_raises(self):
        with pytest.raises(EvaluationError):
            evaluate("?", params=())

    def test_subquery_without_executor_raises(self):
        with pytest.raises(EvaluationError):
            evaluate("EXISTS (SELECT 1 FROM t)")
