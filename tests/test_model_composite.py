"""Pareto accumulation and prioritisation (cascade) semantics."""

import pytest

from repro.errors import PreferenceConstructionError
from repro.model.categorical import pos
from repro.model.composite import ParetoPreference, PrioritizationPreference
from repro.model.numeric import AroundPreference, HighestPreference, LowestPreference
from repro.sql import ast

A = ast.Column(name="a")
B = ast.Column(name="b")
C = ast.Column(name="c")


def pareto_ab():
    return ParetoPreference([LowestPreference(A), LowestPreference(B)])


class TestPareto:
    def test_paper_definition_strict_dominance(self):
        # v better iff better somewhere, not worse anywhere.
        pref = pareto_ab()
        assert pref.is_better((1, 1), (2, 2))
        assert pref.is_better((1, 2), (2, 2))
        assert pref.is_better((1, 2), (1, 3))

    def test_incomparable_vectors(self):
        pref = pareto_ab()
        assert not pref.is_better((1, 3), (2, 2))
        assert not pref.is_better((2, 2), (1, 3))

    def test_equal_vectors(self):
        pref = pareto_ab()
        assert pref.is_equal((1, 2), (1, 2))
        assert not pref.is_better((1, 2), (1, 2))

    def test_cars_example_from_paper(self):
        # Section 3.2: Make='Audi' AND Diesel='yes' over three cars.
        make = pos(ast.Column(name="Make"), {"Audi"})
        diesel = pos(ast.Column(name="Diesel"), {"yes"})
        pref = ParetoPreference([make, diesel])
        audi = ("Audi", "no")
        bmw = ("BMW", "yes")
        vw = ("Volkswagen", "no")
        assert not pref.is_better(audi, bmw)
        assert not pref.is_better(bmw, audi)
        assert pref.is_better(bmw, vw)
        assert pref.is_better(audi, vw)

    def test_three_way(self):
        pref = ParetoPreference(
            [LowestPreference(A), LowestPreference(B), LowestPreference(C)]
        )
        assert pref.is_better((1, 1, 1), (1, 1, 2))
        assert not pref.is_better((1, 1, 2), (1, 2, 1))

    def test_mixed_base_types(self):
        pref = ParetoPreference([AroundPreference(A, 40), HighestPreference(B)])
        # distances: |35-40|=5 vs |19-40|=21; powers 100 vs 50
        assert pref.is_better((35, 100), (19, 50))
        assert not pref.is_better((35, 50), (19, 100))

    def test_operand_concatenation(self):
        pref = pareto_ab()
        assert pref.operands == (A, B)
        assert pref.arity == 2

    def test_nested_pareto(self):
        inner = pareto_ab()
        pref = ParetoPreference([inner, LowestPreference(C)])
        assert pref.arity == 3
        assert pref.is_better((1, 1, 1), (2, 2, 2))
        assert not pref.is_better((1, 2, 1), (2, 1, 1))

    def test_needs_two_parts(self):
        with pytest.raises(PreferenceConstructionError):
            ParetoPreference([LowestPreference(A)])


class TestPrioritization:
    def make(self):
        return PrioritizationPreference([LowestPreference(A), LowestPreference(B)])

    def test_first_preference_decides(self):
        pref = self.make()
        assert pref.is_better((1, 99), (2, 0))

    def test_tie_broken_by_second(self):
        pref = self.make()
        assert pref.is_better((1, 1), (1, 2))
        assert not pref.is_better((1, 2), (1, 1))

    def test_full_tie_is_equal(self):
        pref = self.make()
        assert pref.is_equal((1, 2), (1, 2))
        assert not pref.is_better((1, 2), (1, 2))

    def test_three_levels(self):
        pref = PrioritizationPreference(
            [LowestPreference(A), LowestPreference(B), LowestPreference(C)]
        )
        assert pref.is_better((1, 1, 5), (1, 1, 6))
        assert pref.is_better((1, 0, 9), (1, 1, 0))

    def test_cascade_of_pareto(self):
        # (LOWEST(a) AND LOWEST(b)) CASCADE LOWEST(c)
        pref = PrioritizationPreference([pareto_ab(), LowestPreference(C)])
        # Pareto-incomparable on (a, b): the cascade must NOT fall through
        # to c — incomparable is not equal.
        assert not pref.is_better((1, 3, 0), (2, 2, 9))
        # Pareto-equal on (a, b): c decides.
        assert pref.is_better((1, 2, 0), (1, 2, 9))

    def test_computers_example_from_paper(self):
        # HIGHEST(main_memory) CASCADE color IN ('black','brown')
        pref = PrioritizationPreference(
            [
                HighestPreference(ast.Column(name="main_memory")),
                pos(ast.Column(name="color"), {"black", "brown"}),
            ]
        )
        assert pref.is_better((1024, "green"), (512, "black"))
        assert pref.is_better((1024, "brown"), (1024, "green"))
        assert pref.is_equal((1024, "brown"), (1024, "black"))

    def test_needs_two_parts(self):
        with pytest.raises(PreferenceConstructionError):
            PrioritizationPreference([LowestPreference(A)])


class TestTreeHelpers:
    def test_iter_base_in_order(self):
        pref = PrioritizationPreference(
            [pareto_ab(), LowestPreference(C)]
        )
        kinds = [base.kind for base in pref.iter_base()]
        assert kinds == ["LOWEST", "LOWEST", "LOWEST"]
        operands = [base.operands[0] for base in pref.iter_base()]
        assert operands == [A, B, C]

    def test_component_vectors(self):
        pref = PrioritizationPreference([pareto_ab(), LowestPreference(C)])
        assert pref.component_vectors((1, 2, 3)) == [(1, 2), (3,)]

    def test_children(self):
        pref = pareto_ab()
        assert len(pref.children()) == 2
