"""Property-based parse/print round-trips over generated ASTs.

The corpus tests in test_printer.py check known queries; here hypothesis
builds arbitrary preference terms and expressions directly as AST values
and requires ``parse(to_sql(node)) == node`` — the printer must emit
enough parentheses and quoting for any tree shape.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.sql import ast
from repro.sql.parser import parse_expression, parse_preferring
from repro.sql.printer import to_sql

_identifiers = st.sampled_from(["price", "color", "mileage", "power", "x1"])
_columns = st.builds(ast.Column, name=_identifiers)
_number = st.integers(min_value=0, max_value=9999).map(lambda v: ast.Literal(value=v))
_string = st.sampled_from(["red", "blue", "it's", "a%b", ""]).map(
    lambda v: ast.Literal(value=v)
)
_scalar = st.one_of(_number, _string)


@st.composite
def base_terms(draw):
    kind = draw(
        st.sampled_from(
            ["around", "between", "lowest", "highest", "score", "pos", "neg",
             "contains", "explicit"]
        )
    )
    column = draw(_columns)
    if kind == "around":
        return ast.AroundPref(operand=column, target=draw(_number))
    if kind == "between":
        low = draw(st.integers(0, 100))
        high = draw(st.integers(100, 200))
        return ast.BetweenPref(
            operand=column,
            low=ast.Literal(value=low),
            high=ast.Literal(value=high),
        )
    if kind == "lowest":
        return ast.LowestPref(operand=column)
    if kind == "highest":
        return ast.HighestPref(operand=column)
    if kind == "score":
        return ast.ScorePref(operand=column)
    if kind == "pos":
        values = draw(st.lists(_scalar, min_size=1, max_size=3))
        return ast.PosPref(operand=column, values=tuple(values))
    if kind == "neg":
        values = draw(st.lists(_scalar, min_size=1, max_size=3))
        return ast.NegPref(operand=column, values=tuple(values))
    if kind == "contains":
        return ast.ContainsPref(
            operand=column, terms=ast.Literal(value="quiet balcony")
        )
    pairs = tuple(
        (ast.Literal(value=f"v{i}"), ast.Literal(value=f"w{i}"))
        for i in range(draw(st.integers(1, 3)))
    )
    return ast.ExplicitPref(operand=column, pairs=pairs)


@st.composite
def else_terms(draw):
    # ELSE chains combine POS/NEG-style constituents only.
    parts = draw(
        st.lists(
            st.one_of(
                st.builds(
                    ast.PosPref,
                    operand=_columns,
                    values=st.lists(_scalar, min_size=1, max_size=2).map(tuple),
                ),
                st.builds(
                    ast.NegPref,
                    operand=_columns,
                    values=st.lists(_scalar, min_size=1, max_size=2).map(tuple),
                ),
            ),
            min_size=2,
            max_size=3,
        )
    )
    return ast.ElsePref(parts=tuple(parts))


@st.composite
def pref_terms(draw, depth=2):
    if depth == 0:
        return draw(st.one_of(base_terms(), else_terms()))
    constructor = draw(st.sampled_from(["base", "else", "pareto", "cascade"]))
    if constructor == "base":
        return draw(base_terms())
    if constructor == "else":
        return draw(else_terms())
    parts = tuple(
        draw(pref_terms(depth=depth - 1)) for _ in range(draw(st.integers(2, 3)))
    )
    if constructor == "pareto":
        # Normalise: the parser flattens nested Pareto of the same level,
        # so avoid direct Pareto-in-Pareto nesting.
        parts = tuple(
            part for part in parts if not isinstance(part, ast.ParetoPref)
        ) or (draw(base_terms()), draw(base_terms()))
        if len(parts) < 2:
            parts = parts + (draw(base_terms()),)
        return ast.ParetoPref(parts=parts)
    parts = tuple(
        part for part in parts if not isinstance(part, ast.CascadePref)
    ) or (draw(base_terms()), draw(base_terms()))
    if len(parts) < 2:
        parts = parts + (draw(base_terms()),)
    return ast.CascadePref(parts=parts)


@given(term=pref_terms())
@settings(max_examples=200, deadline=None)
def test_preference_term_round_trip(term):
    rendered = to_sql(term)
    assert parse_preferring(rendered) == term


@st.composite
def expressions(draw, depth=2):
    if depth == 0:
        return draw(st.one_of(_columns, _number, _string))
    kind = draw(st.sampled_from(["leaf", "binary", "unary", "case", "in", "isnull"]))
    if kind == "leaf":
        return draw(expressions(depth=0))
    if kind == "binary":
        op = draw(st.sampled_from(["+", "-", "*", "/", "=", "<", "AND", "OR"]))
        return ast.Binary(
            op=op,
            left=draw(expressions(depth=depth - 1)),
            right=draw(expressions(depth=depth - 1)),
        )
    if kind == "unary":
        return ast.Unary(op=draw(st.sampled_from(["-", "NOT"])), operand=draw(expressions(depth=depth - 1)))
    if kind == "case":
        return ast.CaseWhen(
            branches=(
                (draw(expressions(depth=depth - 1)), draw(expressions(depth=depth - 1))),
            ),
            otherwise=draw(st.none() | expressions(depth=depth - 1)),
        )
    if kind == "in":
        return ast.InList(
            operand=draw(expressions(depth=0)),
            items=tuple(draw(st.lists(_scalar, min_size=1, max_size=3))),
            negated=draw(st.booleans()),
        )
    return ast.IsNull(operand=draw(expressions(depth=0)), negated=draw(st.booleans()))


@given(expr=expressions())
@settings(max_examples=200, deadline=None)
def test_expression_round_trip(expr):
    rendered = to_sql(expr)
    assert parse_expression(rendered) == expr
