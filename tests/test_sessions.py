"""Session-oriented preference refinement (Chomicki-style reuse).

Three layers of evidence that serving a refined query from cached BMO
winners is sound:

* unit tests of :func:`repro.model.algebra.refines` — every admitted rule
  and every counterexample that shaped the rules,
* a Hypothesis property — whenever ``refines`` claims order preservation,
  the old dominance embeds in the new one and
  ``BMO_new(R) == BMO_new(BMO_old(R))`` on sampled tuple sets,
* driver tests — the session cache serves provably-refined queries with
  rows identical to fresh evaluation, EXPLAIN surfaces the reuse, and
  every invalidation path (same-connection DML, cross-connection writes,
  catalog DDL, parameter rebinds) refuses stale answers.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.engine.relation import Relation
from repro.errors import PlanError
from repro.model.algebra import normalize, refines
from repro.model.builder import build_preference
from repro.plan.cost import SESSION_STRATEGY
from repro.plan.session import (
    SessionCache,
    SessionEntry,
    analyze_refinement,
    delta_condition,
    diff_conjuncts,
    split_conjuncts,
)
from repro.sql import ast
from repro.sql.parser import parse_statement
from repro.sql.printer import to_sql


def col(name: str) -> ast.Column:
    return ast.Column(name=name)


def lit(value: object) -> ast.Literal:
    return ast.Literal(value=value)


def pos(column: str, *values: object) -> ast.PosPref:
    return ast.PosPref(operand=col(column), values=tuple(lit(v) for v in values))


def neg(column: str, *values: object) -> ast.NegPref:
    return ast.NegPref(operand=col(column), values=tuple(lit(v) for v in values))


def explicit(column: str, *pairs: tuple[object, object]) -> ast.ExplicitPref:
    return ast.ExplicitPref(
        operand=col(column),
        pairs=tuple((lit(b), lit(w)) for b, w in pairs),
    )


def lowest(column: str) -> ast.LowestPref:
    return ast.LowestPref(operand=col(column))


def highest(column: str) -> ast.HighestPref:
    return ast.HighestPref(operand=col(column))


def cascade(*parts: ast.PrefTerm) -> ast.CascadePref:
    return ast.CascadePref(parts=parts)


def pareto(*parts: ast.PrefTerm) -> ast.ParetoPref:
    return ast.ParetoPref(parts=parts)


def chain(*parts: ast.PrefTerm) -> ast.ElsePref:
    return ast.ElsePref(parts=parts)


class TestRefinesRules:
    """Each admitted refinement rule, plus the identity."""

    def test_identical_terms(self):
        judgment = refines(lowest("price"), lowest("price"))
        assert judgment is not None
        assert judgment.order_preserving
        assert judgment.rules == ("identical",)

    def test_identical_after_normalisation(self):
        # Pareto flattening happens before the comparison.
        nested = pareto(pareto(lowest("a"), lowest("b")), lowest("c"))
        flat = pareto(lowest("a"), lowest("b"), lowest("c"))
        judgment = refines(nested, flat)
        assert judgment is not None and judgment.rules == ("identical",)

    def test_cascade_tie_breaker_appended(self):
        judgment = refines(
            lowest("price"), cascade(lowest("price"), pos("make", "vw"))
        )
        assert judgment is not None and judgment.order_preserving
        assert "cascade tie-breaker appended" in judgment.rules

    def test_cascade_appended_to_existing_cascade(self):
        old = cascade(lowest("price"), pos("make", "vw"))
        new = cascade(lowest("price"), pos("make", "vw"), highest("year"))
        judgment = refines(old, new)
        assert judgment is not None and judgment.order_preserving

    def test_explicit_chain_extended(self):
        old = explicit("color", ("red", "blue"))
        new = explicit("color", ("red", "blue"), ("blue", "green"))
        judgment = refines(old, new)
        assert judgment is not None and judgment.order_preserving
        assert judgment.rules == ("explicit chain extended",)

    def test_explicit_extension_via_transitive_closure(self):
        # The old pair red>green is not listed verbatim in the new chain,
        # but its transitive closure contains it.
        old = explicit("color", ("red", "green"))
        new = explicit("color", ("red", "blue"), ("blue", "green"))
        judgment = refines(old, new)
        assert judgment is not None and judgment.order_preserving

    def test_explicit_extended_inside_cascade_prefix(self):
        # EXPLICIT's is_equal is value identity, independent of the pairs,
        # so extension is sound even at an interior cascade position.
        old = cascade(explicit("color", ("red", "blue")), lowest("price"))
        new = cascade(
            explicit("color", ("red", "blue"), ("blue", "green")),
            lowest("price"),
        )
        judgment = refines(old, new)
        assert judgment is not None and judgment.order_preserving
        assert "explicit chain extended" in judgment.rules

    def test_else_alternative_appended(self):
        old = chain(pos("fuel", "diesel"))
        new = chain(pos("fuel", "diesel"), pos("fuel", "hybrid"))
        judgment = refines(old, new)
        assert judgment is not None and judgment.order_preserving
        assert judgment.rules == ("else alternative appended",)

    def test_pareto_dimension_added_is_report_only(self):
        judgment = refines(lowest("price"), pareto(lowest("price"), lowest("mileage")))
        assert judgment is not None
        assert not judgment.order_preserving
        assert judgment.rules == ("pareto dimension added",)


class TestRefinesCounterexamples:
    """Relationships that must NOT be judged refinements (or must not be
    order preserving) — each mirrors a concrete dominance reversal."""

    def test_relaxation_cascade_prefix_dropped(self):
        old = cascade(lowest("price"), pos("make", "vw"))
        assert refines(old, lowest("price")) is None

    def test_relaxation_pareto_dimension_removed(self):
        old = pareto(lowest("price"), lowest("mileage"))
        assert refines(old, lowest("price")) is None

    def test_dimension_swap(self):
        assert refines(lowest("price"), lowest("mileage")) is None
        assert refines(lowest("price"), highest("price")) is None

    def test_cascade_tie_breaker_prepended_not_appended(self):
        # Prioritising a NEW preference above the old one reorders
        # everything; only appending at the tail refines.
        old = lowest("price")
        new = cascade(pos("make", "vw"), lowest("price"))
        assert refines(old, new) is None

    def test_interior_cascade_layer_must_keep_is_equal(self):
        # ELSE-appending inside a cascade *prefix* changes which rows fall
        # through to the tie-breaker, so it is rejected there.
        old = cascade(chain(pos("fuel", "diesel")), lowest("price"))
        new = cascade(
            chain(pos("fuel", "diesel"), pos("fuel", "hybrid")),
            lowest("price"),
        )
        assert refines(old, new) is None

    def test_else_value_overlap_promotes_a_bucket(self):
        # POS(a) ELSE NEG(b): others > b.  Appending ELSE POS(b) would
        # move b ABOVE others — a reversal, not a refinement.
        old = chain(pos("color", "a"), neg("color", "b"))
        new = chain(pos("color", "a"), neg("color", "b"), pos("color", "b"))
        assert refines(old, new) is None

    def test_else_multi_operand_rejected(self):
        old = chain(pos("fuel", "diesel"), neg("make", "opel"))
        new = chain(
            pos("fuel", "diesel"), neg("make", "opel"), pos("color", "red")
        )
        assert refines(old, new) is None

    def test_explicit_cycle_rejected(self):
        old = explicit("color", ("red", "blue"))
        new = explicit("color", ("red", "blue"), ("blue", "red"))
        assert refines(old, new) is None

    def test_explicit_shrunk_rejected(self):
        old = explicit("color", ("red", "blue"), ("blue", "green"))
        new = explicit("color", ("red", "blue"))
        assert refines(old, new) is None

    def test_explicit_different_operand_rejected(self):
        old = explicit("color", ("red", "blue"))
        new = explicit("make", ("red", "blue"), ("blue", "green"))
        assert refines(old, new) is None

    def test_pos_values_widened_is_not_a_refinement(self):
        # POS widening moves values from OTHERS into the top bucket —
        # a relaxation of the dislike for them.
        assert refines(pos("fuel", "diesel"), pos("fuel", "diesel", "hybrid")) is None


# ---------------------------------------------------------------------------
# Property: refines() order preservation is semantically sound.
# ---------------------------------------------------------------------------

_COLORS = ("red", "blue", "green", "white", "black")

_numeric_base = st.sampled_from(("n", "m")).flatmap(
    lambda c: st.sampled_from((lowest(c), highest(c)))
)


def _pos_neg_base(values: tuple[str, ...]):
    return st.sampled_from((pos("s", *values), neg("s", *values)))


_categorical_base = (
    st.lists(st.sampled_from(_COLORS), min_size=1, max_size=3, unique=True)
    .map(tuple)
    .flatmap(_pos_neg_base)
)

_explicit_base = st.permutations(_COLORS[:4]).map(
    lambda order: explicit("s", *zip(order, order[1:]))
)

_base_term = st.one_of(_numeric_base, _categorical_base, _explicit_base)


@st.composite
def _refinement_pairs(draw):
    """(old, new) pairs built by applying one admitted refinement rule."""
    old = draw(_base_term)
    rule = draw(st.sampled_from(("identity", "cascade", "explicit", "else")))
    if rule == "cascade":
        tie = draw(_base_term)
        parts = old.parts if isinstance(old, ast.CascadePref) else (old,)
        return old, cascade(*parts, tie)
    if rule == "explicit" and isinstance(old, ast.ExplicitPref):
        extra = draw(st.sampled_from(_COLORS))
        values = [p[1].value for p in old.pairs]
        if extra not in values and extra != old.pairs[0][0].value:
            new_pairs = tuple((b.value, w.value) for b, w in old.pairs) + (
                (values[-1], extra),
            )
            return old, explicit("s", *new_pairs)
        return old, old
    if rule == "else" and isinstance(old, (ast.PosPref, ast.NegPref)):
        used = {v.value for v in old.values}
        free = [c for c in _COLORS if c not in used]
        if free:
            extra = draw(st.sampled_from(free))
            return old, chain(old, pos("s", extra))
        return old, old
    return old, old


def _vector(preference, row: dict[str, object]) -> tuple:
    return tuple(row[operand.name] for operand in preference.operands)


def _bmo(preference, rows: list[dict[str, object]]) -> list[int]:
    """Brute-force BMO: indices of rows no other row strictly dominates."""
    vectors = [_vector(preference, row) for row in rows]
    return [
        i
        for i, v in enumerate(vectors)
        if not any(preference.is_better(w, v) for j, w in enumerate(vectors) if j != i)
    ]


_rows = st.lists(
    st.fixed_dictionaries(
        {
            "n": st.integers(min_value=0, max_value=5),
            "m": st.integers(min_value=0, max_value=5),
            "s": st.sampled_from(_COLORS),
        }
    ),
    min_size=1,
    max_size=14,
)


@settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(pair=_refinement_pairs(), rows=_rows)
def test_refinement_preserves_order_and_bmo(pair, rows):
    """Whenever refines() claims order preservation:

    1. the old dominance embeds in the new one (x >_old y => x >_new y),
    2. BMO_new(R) == BMO_new(BMO_old(R)) — the winnow-reuse identity the
       session cache relies on.
    """
    old_term, new_term = pair
    judgment = refines(old_term, new_term)
    assert judgment is not None, "constructed refinement was not recognised"
    assert judgment.order_preserving

    old_pref = build_preference(normalize(old_term))
    new_pref = build_preference(normalize(new_term))

    for x in rows:
        for y in rows:
            if old_pref.is_better(_vector(old_pref, x), _vector(old_pref, y)):
                assert new_pref.is_better(_vector(new_pref, x), _vector(new_pref, y))

    old_winner_rows = [rows[i] for i in _bmo(old_pref, rows)]
    fresh = [tuple(rows[i].items()) for i in _bmo(new_pref, rows)]
    reused = [
        tuple(old_winner_rows[i].items()) for i in _bmo(new_pref, old_winner_rows)
    ]
    assert sorted(map(repr, fresh)) == sorted(map(repr, reused))


@settings(max_examples=30, deadline=None)
@given(base=_numeric_base, rows=_rows)
def test_pareto_addition_is_correctly_unsound(base, rows):
    """The report-only judgment really is unsound in general: adding a
    Pareto dimension can grow the BMO set beyond the cached winners."""
    other = lowest("m") if base.operand.name == "n" else lowest("n")
    judgment = refines(base, pareto(base, other))
    assert judgment is not None and not judgment.order_preserving


# ---------------------------------------------------------------------------
# WHERE-axis helpers.
# ---------------------------------------------------------------------------


class TestWhereDiff:
    def _where(self, sql: str) -> ast.Expr:
        statement = parse_statement(f"SELECT * FROM t WHERE {sql}")
        return statement.where

    def test_split_and_diff(self):
        old = split_conjuncts(self._where("a < 1 AND b = 2 AND c > 3"))
        new = split_conjuncts(self._where("b = 2 AND d <= 4"))
        common, dropped, added = diff_conjuncts(old, new)
        assert [to_sql(e) for e in common] == ["b = 2"]
        assert [to_sql(e) for e in dropped] == ["a < 1", "c > 3"]
        assert [to_sql(e) for e in added] == ["d <= 4"]

    def test_delta_condition_three_valued(self):
        # A row was excluded by the old WHERE iff a dropped conjunct was
        # FALSE **or NULL** — the delta must include both.
        new_where = self._where("b = 2")
        dropped = [self._where("a < 1")]
        sql = to_sql(delta_condition(new_where, dropped))
        assert sql == "b = 2 AND (NOT (a < 1) OR (a < 1) IS NULL)"

    def test_delta_condition_multiple_dropped(self):
        dropped = split_conjuncts(self._where("a < 1 AND c > 3"))
        sql = to_sql(delta_condition(None, dropped))
        assert "NOT (a < 1) OR (a < 1) IS NULL" in sql
        assert "NOT (c > 3) OR (c > 3) IS NULL" in sql


# ---------------------------------------------------------------------------
# SessionCache unit behaviour.
# ---------------------------------------------------------------------------


def _entry(
    sql: str, versions: tuple[int, int, int] = (0, 1, 0), rows: int = 3
) -> SessionEntry:
    select = parse_statement(sql)
    return SessionEntry(
        select=select,
        term=normalize(select.preferring),
        winners=Relation(
            columns=("id", "price", "make"),
            rows=[(i, 100 * i, "vw") for i in range(rows)],
        ),
        data_version=versions[0],
        pragma_version=versions[1],
        catalog_version=versions[2],
        text=sql,
    )


class TestSessionCache:
    BASE = "SELECT * FROM cars PREFERRING LOWEST(price)"
    REFINED = "SELECT * FROM cars PREFERRING LOWEST(price) CASCADE make IN ('vw')"

    def _match(self, cache, sql, versions=(0, 1, 0)):
        select = parse_statement(sql)
        return cache.match(select, normalize(select.preferring), versions)

    def test_store_dedupes_by_text_and_trims_lru(self):
        cache = SessionCache(maxsize=2)
        cache.store(_entry(self.BASE))
        cache.store(_entry(self.BASE))
        assert len(cache.entries) == 1
        cache.store(_entry(self.REFINED))
        cache.store(_entry(self.BASE + " GROUPING make"))
        assert len(cache.entries) == 2
        assert cache.entries[0].text == self.BASE + " GROUPING make"
        assert all(e.text != self.BASE for e in cache.entries)

    def test_match_returns_servable_and_moves_to_front(self):
        cache = SessionCache()
        cache.store(_entry(self.BASE))
        cache.store(_entry("SELECT * FROM cars PREFERRING LOWEST(mileage)"))
        match = self._match(cache, self.REFINED)
        assert match is not None and match.servable
        assert "cascade tie-breaker appended" in match.rules
        assert cache.entries[0].text == self.BASE
        assert cache.hits == 1

    def test_version_mismatch_evicts_lazily(self):
        cache = SessionCache()
        cache.store(_entry(self.BASE, versions=(0, 1, 0)))
        match = self._match(cache, self.REFINED, versions=(1, 1, 0))
        assert match is None
        assert cache.entries == ()
        assert cache.invalidations == 1 and cache.misses == 1

    def test_every_version_component_matters(self):
        for moved in ((1, 1, 0), (0, 2, 0), (0, 1, 1)):
            cache = SessionCache()
            cache.store(_entry(self.BASE, versions=(0, 1, 0)))
            assert self._match(cache, self.REFINED, versions=moved) is None
            assert cache.invalidations == 1

    def test_report_only_match_is_second_choice(self):
        cache = SessionCache()
        cache.store(_entry(self.BASE))
        pareto_sql = (
            "SELECT * FROM cars PREFERRING LOWEST(price) AND LOWEST(mileage)"
        )
        match = self._match(cache, pareto_sql)
        assert match is not None and not match.servable
        assert "not reusable" in match.relation
        assert cache.hits == 0 and cache.misses == 1

    def test_different_scan_never_matches(self):
        cache = SessionCache()
        cache.store(_entry(self.BASE))
        assert (
            self._match(cache, "SELECT * FROM boats PREFERRING LOWEST(price)")
            is None
        )

    def test_grouping_mismatch_never_matches(self):
        cache = SessionCache()
        cache.store(_entry(self.BASE))
        assert self._match(cache, self.REFINED + " GROUPING make") is None

    def test_strengthening_beyond_grouping_is_report_only(self):
        cache = SessionCache()
        cache.store(_entry(self.BASE))
        narrowed = self.BASE.replace("FROM cars", "FROM cars WHERE price < 500")
        match = self._match(cache, narrowed)
        assert match is not None and not match.servable
        assert "WHERE strengthened beyond the grouping columns" in match.relation

    def test_weakening_builds_delta_select(self):
        cache = SessionCache()
        cache.store(
            _entry(self.BASE.replace("FROM cars", "FROM cars WHERE price < 500"))
        )
        match = self._match(cache, self.BASE)
        assert match is not None and match.servable
        assert match.delta_select is not None
        assert (
            to_sql(match.delta_select)
            == "SELECT * FROM cars WHERE NOT (price < 500) OR (price < 500) IS NULL"
        )


class TestAnalyzeRefinement:
    def test_but_only_and_aggregates_disable_reuse(self):
        entry = _entry("SELECT * FROM cars PREFERRING LOWEST(price)")
        for tail in (" BUT ONLY level <= 2", " GROUP BY make", " HAVING COUNT(*) > 1"):
            sql = (
                "SELECT * FROM cars PREFERRING LOWEST(price) "
                "CASCADE make IN ('vw')" + tail
            )
            try:
                select = parse_statement(sql)
            except Exception:
                continue
            term = normalize(select.preferring)
            assert analyze_refinement(entry, select, term) is None


# ---------------------------------------------------------------------------
# Driver end-to-end: the session strategy against fresh evaluation.
# ---------------------------------------------------------------------------

_CARS_DDL = (
    "CREATE TABLE cars (id INTEGER, price INTEGER, mileage INTEGER, "
    "fuel TEXT, make TEXT)"
)


def _make_cars(con, rows: int = 1200, seed: int = 7) -> None:
    con.execute(_CARS_DDL)
    rng = random.Random(seed)
    data = [
        (
            i,
            rng.randrange(5000, 90000),
            rng.randrange(0, 300000),
            rng.choice(["diesel", "petrol", "hybrid"]),
            rng.choice(["vw", "opel", "bmw", "audi"]),
        )
        for i in range(rows)
    ]
    con.raw.executemany("INSERT INTO cars VALUES (?,?,?,?,?)", data)
    con.execute("ANALYZE")


def _fresh_rows(sql: str, params=(), rows: int = 1200, seed: int = 7, sort=True):
    con = repro.connect(":memory:")
    try:
        _make_cars(con, rows=rows, seed=seed)
        fetched = con.execute(sql, params).fetchall()
        return sorted(fetched) if sort else fetched
    finally:
        con.close()


@pytest.fixture
def cars_connection():
    con = repro.connect(":memory:")
    _make_cars(con)
    yield con
    con.close()


BASE_Q = "SELECT * FROM cars PREFERRING LOWEST(price) AND LOWEST(mileage)"


class TestSessionExecution:
    def test_refined_query_served_without_rescan(self, cars_connection):
        con = cars_connection
        con.execute(BASE_Q).fetchall()
        refined = BASE_Q + " CASCADE make IN ('vw')"
        cursor = con.execute(refined)
        assert cursor.plan is not None and cursor.plan.strategy == SESSION_STRATEGY
        rows = sorted(cursor.fetchall())
        assert rows == _fresh_rows(refined)
        stats = con.session_stats()
        assert stats["served"] == 1 and stats["hits"] == 1
        # No delta scan was needed: nothing hit the host database.
        original, executed = con.trace[-1]
        assert original == refined
        assert "session reuse" in executed and "no delta scan" in executed

    def test_drill_down_chain_re_winnows_shrinking_sets(self, cars_connection):
        con = cars_connection
        con.execute(BASE_Q).fetchall()
        steps = [
            BASE_Q + " CASCADE make IN ('vw')",
            BASE_Q + " CASCADE make IN ('vw') CASCADE fuel IN ('diesel')",
        ]
        for step in steps:
            cursor = con.execute(step)
            assert cursor.plan.strategy == SESSION_STRATEGY
            assert sorted(cursor.fetchall()) == _fresh_rows(step)
        assert con.session_stats()["served"] == len(steps)

    def test_projection_order_and_limit_served_from_winner_base(
        self, cars_connection
    ):
        # The cache stores the full winner base, so a refined query with a
        # different surface (projection, ORDER BY, LIMIT) is still served.
        con = cars_connection
        con.execute(BASE_Q).fetchall()
        refined = (
            "SELECT id, price FROM cars PREFERRING LOWEST(price) AND "
            "LOWEST(mileage) CASCADE make IN ('vw') ORDER BY price, id LIMIT 5"
        )
        cursor = con.execute(refined)
        assert cursor.plan.strategy == SESSION_STRATEGY
        assert cursor.fetchall() == _fresh_rows(refined, sort=False)

    def test_where_weakening_scans_only_the_delta(self):
        # WHERE-filtered scans only leave the host rewrite behind on
        # larger tables, so this test sizes up to get a cached entry.
        con = repro.connect(":memory:")
        try:
            _make_cars(con, rows=15000)
            narrow = BASE_Q.replace(
                "FROM cars", "FROM cars WHERE price < 40000 AND mileage < 150000"
            )
            con.execute(narrow).fetchall()
            weakened = BASE_Q.replace(
                "FROM cars", "FROM cars WHERE price < 40000"
            )
            cursor = con.execute(weakened)
            assert cursor.plan.strategy == SESSION_STRATEGY
            assert cursor.plan.session_delta_sql is not None
            assert "mileage < 150000" in cursor.plan.session_delta_sql
            assert sorted(cursor.fetchall()) == _fresh_rows(weakened, rows=15000)
        finally:
            con.close()

    def test_grouping_strengthening_served(self, cars_connection):
        con = cars_connection
        base = BASE_Q + " GROUPING fuel"
        con.execute(base).fetchall()
        refined = (
            "SELECT * FROM cars WHERE fuel IN ('diesel') PREFERRING "
            "LOWEST(price) AND LOWEST(mileage) GROUPING fuel"
        )
        cursor = con.execute(refined)
        assert cursor.plan.strategy == SESSION_STRATEGY
        assert "predicate strengthened on grouping columns" in (
            cursor.plan.session_match.rules
        )
        assert sorted(cursor.fetchall()) == _fresh_rows(refined)

    def test_non_grouping_strengthening_not_served(self, cars_connection):
        con = cars_connection
        con.execute(BASE_Q).fetchall()
        strengthened = BASE_Q.replace(
            "FROM cars", "FROM cars WHERE price < 40000"
        )
        cursor = con.execute(strengthened)
        assert cursor.plan.strategy != SESSION_STRATEGY
        assert cursor.plan.session_match is not None
        assert not cursor.plan.session_match.servable
        assert sorted(cursor.fetchall()) == _fresh_rows(strengthened)

    def test_dimension_swap_not_served(self, cars_connection):
        con = cars_connection
        con.execute(BASE_Q).fetchall()
        swapped = "SELECT * FROM cars PREFERRING LOWEST(price) AND HIGHEST(mileage)"
        cursor = con.execute(swapped)
        assert cursor.plan.strategy != SESSION_STRATEGY
        assert sorted(cursor.fetchall()) == _fresh_rows(swapped)

    def test_explain_surfaces_session_reuse(self, cars_connection):
        con = cars_connection
        con.execute(BASE_Q).fetchall()
        refined = BASE_Q + " CASCADE make IN ('vw')"
        rows = dict(con.execute("EXPLAIN PREFERENCE " + refined).fetchall())
        assert rows["strategy"].startswith("session")
        assert rows["refinement relation"].startswith("refines cached result")
        assert "cascade tie-breaker appended" in rows["refinement relation"]
        assert "re-winnow" in rows["session reuse"]
        assert "cost: session" in rows
        report = con.explain(refined)
        assert "session reuse" in report

    def test_session_reuse_toggle(self, cars_connection):
        con = cars_connection
        con.execute(BASE_Q).fetchall()
        con.session_reuse = False
        assert con.session_stats()["entries"] == 0
        refined = BASE_Q + " CASCADE make IN ('vw')"
        cursor = con.execute(refined)
        assert cursor.plan.strategy != SESSION_STRATEGY
        assert sorted(cursor.fetchall()) == _fresh_rows(refined)
        assert con.session_stats()["served"] == 0
        con.session_reuse = True
        con.execute(BASE_Q).fetchall()
        assert con.execute(refined).plan.strategy == SESSION_STRATEGY


class TestSessionInvalidation:
    def test_dml_invalidates_but_reprimes(self, cars_connection):
        con = cars_connection
        con.execute(BASE_Q).fetchall()
        con.execute(
            "INSERT INTO cars VALUES (9001, 1, 1, 'diesel', 'vw')"
        )
        refined = BASE_Q + " CASCADE make IN ('vw')"
        cursor = con.execute(refined)
        assert cursor.plan.strategy != SESSION_STRATEGY
        rows = sorted(cursor.fetchall())
        assert (9001, 1, 1, "diesel", "vw") in rows
        assert con.session_stats()["invalidations"] >= 1
        # Re-running the base query re-primes the cache, and refinements
        # served from it see the inserted row.
        con.execute(BASE_Q).fetchall()
        cursor = con.execute(refined)
        assert cursor.plan.strategy == SESSION_STRATEGY
        assert (9001, 1, 1, "diesel", "vw") in cursor.fetchall()

    def test_dml_on_other_table_also_invalidates(self, cars_connection):
        # The data version is connection-global: any write is a
        # conservative but correct reason to drop cached winners.
        con = cars_connection
        con.execute("CREATE TABLE other (x INTEGER)")
        con.execute(BASE_Q).fetchall()
        con.execute("INSERT INTO other VALUES (1)")
        cursor = con.execute(BASE_Q + " CASCADE make IN ('vw')")
        assert cursor.plan.strategy != SESSION_STRATEGY

    def test_cross_connection_write_detected(self, tmp_path):
        path = str(tmp_path / "cars.db")
        writer = repro.connect(path)
        _make_cars(writer)
        writer.commit()
        reader = repro.connect(path)
        reader.execute(BASE_Q).fetchall()
        writer.execute("INSERT INTO cars VALUES (9002, 1, 1, 'diesel', 'vw')")
        writer.commit()
        refined = BASE_Q + " CASCADE make IN ('vw')"
        cursor = reader.execute(refined)
        # PRAGMA data_version moved -> the cached winners must not be
        # served; the cheap new row must appear.
        assert cursor.plan.strategy != SESSION_STRATEGY
        assert (9002, 1, 1, "diesel", "vw") in cursor.fetchall()
        writer.close()
        reader.close()

    def test_catalog_ddl_orphans_entries(self, cars_connection):
        con = cars_connection
        con.execute(BASE_Q).fetchall()
        con.execute("CREATE PREFERENCE cheap ON cars AS LOWEST(price)")
        cursor = con.execute(BASE_Q + " CASCADE make IN ('vw')")
        assert cursor.plan.strategy != SESSION_STRATEGY
        assert con.session_stats()["invalidations"] >= 1

    def test_named_preference_matches_inlined_form(self, cars_connection):
        # The cache canonicalises through the catalog: a query phrased via
        # a named preference refines an entry stored in inline form.
        con = cars_connection
        con.execute(
            "CREATE PREFERENCE value_hunt ON cars AS LOWEST(price) AND LOWEST(mileage)"
        )
        con.execute(BASE_Q).fetchall()
        refined = (
            "SELECT * FROM cars PREFERRING PREFERENCE value_hunt "
            "CASCADE make IN ('vw')"
        )
        cursor = con.execute(refined)
        assert cursor.plan.strategy == SESSION_STRATEGY
        assert sorted(cursor.fetchall()) == _fresh_rows(
            BASE_Q + " CASCADE make IN ('vw')"
        )


class TestCacheTierInterplay:
    def test_session_plans_never_enter_the_plan_cache(self, cars_connection):
        con = cars_connection
        con.execute(BASE_Q).fetchall()
        refined = BASE_Q + " CASCADE make IN ('vw')"
        first = con.execute(refined)
        assert first.plan.strategy == SESSION_STRATEGY
        # A second execution must re-plan (and re-validate) rather than
        # replay a session plan whose entry may have moved.
        second = con.execute(refined)
        assert sorted(second.fetchall()) == _fresh_rows(refined)

    def test_rebind_refuses_session_plans(self, cars_connection):
        con = cars_connection
        con.execute(BASE_Q).fetchall()
        plan = con.plan(BASE_Q + " CASCADE make IN ('vw')")
        assert plan.strategy == SESSION_STRATEGY
        from repro.plan.planner import rebind_plan

        with pytest.raises(PlanError, match="re-planned"):
            rebind_plan(plan, plan.statement)

    def test_dml_keeps_still_valid_plan_cache_parse(self, cars_connection):
        con = cars_connection
        query = BASE_Q + " CASCADE make IN ('vw')"
        con.execute(query).fetchall()
        before = con.plan_cache_stats().hits
        con.execute("INSERT INTO cars VALUES (9003, 2, 2, 'diesel', 'vw')")
        cursor = con.execute(query)
        # The session entry is gone, but the plan cache still shortcuts
        # the parse/plan for the (non-session) strategy.
        assert cursor.plan.strategy != SESSION_STRATEGY
        assert con.plan_cache_stats().hits >= before
        assert (9003, 2, 2, "diesel", "vw") in cursor.fetchall()

    def test_parameter_rebinds_never_serve_stale(self, cars_connection):
        con = cars_connection
        sql = (
            "SELECT * FROM cars WHERE price < ? "
            "PREFERRING LOWEST(mileage) CASCADE make IN ('vw')"
        )
        first = sorted(con.execute(sql, (40000,)).fetchall())
        assert first == _fresh_rows(sql, (40000,))
        # A different bound literal changes the WHERE structurally; the
        # session layer must not reuse winners computed under the old one.
        second = sorted(con.execute(sql, (9000,)).fetchall())
        assert second == _fresh_rows(sql, (9000,))
        third = sorted(con.execute(sql, (40000,)).fetchall())
        assert third == first

    def test_view_creation_bumps_catalog_and_session(self, cars_connection):
        con = cars_connection
        con.execute(BASE_Q).fetchall()
        con.execute(
            "CREATE PREFERENCE VIEW best_cars AS SELECT * FROM cars "
            "PREFERRING LOWEST(price)"
        )
        cursor = con.execute(BASE_Q + " CASCADE make IN ('vw')")
        assert cursor.plan.strategy != SESSION_STRATEGY
