"""Edge cases and error paths across module boundaries."""

import pytest

import repro
from repro.engine import PreferenceEngine, Relation
from repro.errors import RewriteError
from repro.rewrite.planner import rewrite_select
from repro.sql.parser import parse_statement


class TestRewriterEdges:
    def test_exists_in_preference_where_is_rejected(self):
        # Correlated sub-queries in the WHERE of a preference query would
        # need re-aliasing inside the anti-join; release 1.3 rejects them.
        statement = parse_statement(
            "SELECT * FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.id = t.id) "
            "PREFERRING LOWEST(x)"
        )
        with pytest.raises(RewriteError):
            rewrite_select(statement)

    def test_algebra_simplification_noted(self):
        statement = parse_statement(
            "SELECT * FROM t PREFERRING LOWEST(x) AND LOWEST(x)"
        )
        result = rewrite_select(statement)
        assert any("simplified" in note for note in result.notes)
        # The simplified query has a single rank comparison pair.
        sql = repro.to_sql(result.statement)
        assert sql.count("NOT EXISTS") == 1

    def test_rewrite_result_notes_dynamic_optimum(self):
        statement = parse_statement(
            "SELECT DISTANCE(x) FROM t PREFERRING LOWEST(x)"
        )
        result = rewrite_select(statement)
        assert any("candidate-set optimum" in note for note in result.notes)

    def test_qualified_columns_in_single_table_query(self, fixture_connection):
        rows = fixture_connection.execute(
            "SELECT o.ident FROM oldtimer AS o PREFERRING HIGHEST(o.age)"
        ).fetchall()
        assert rows == [("Skinner",)]

    def test_case_expression_inside_preference_operand(self, fixture_connection):
        rows = fixture_connection.execute(
            "SELECT ident FROM oldtimer PREFERRING "
            "LOWEST(CASE WHEN color = 'red' THEN 0 ELSE 1 END)"
        ).fetchall()
        assert {r[0] for r in rows} == {"Selma", "Smithers"}


class TestEngineAlgorithmKnob:
    @pytest.mark.parametrize("algorithm", ["nested_loop", "bnl", "sfs", "dnc"])
    def test_engine_uses_configured_algorithm(self, algorithm):
        relation = Relation(
            columns=("id", "x", "y"),
            rows=[(1, 1, 3), (2, 3, 1), (3, 2, 2), (4, 4, 4)],
        )
        engine = PreferenceEngine({"t": relation}, algorithm=algorithm)
        result = engine.execute(
            "SELECT id FROM t PREFERRING LOWEST(x) AND LOWEST(y)"
        )
        assert {row[0] for row in result} == {1, 2, 3}

    def test_unknown_algorithm_surfaces(self):
        from repro.errors import EvaluationError

        engine = PreferenceEngine(
            {"t": Relation(columns=("x",), rows=[(1,)])}, algorithm="bogus"
        )
        with pytest.raises(EvaluationError):
            engine.execute("SELECT x FROM t PREFERRING LOWEST(x)")


class TestDuplicateRowsSemantics:
    def test_equal_tuples_all_survive_both_paths(self):
        # Strict order: duplicates never dominate each other, so all
        # copies of a winning tuple are returned (paper's multiset model).
        relation = Relation(
            columns=("id", "x"),
            rows=[(1, 5), (2, 5), (3, 9)],
        )
        engine = PreferenceEngine({"t": relation})
        engine_ids = {
            row[0]
            for row in engine.execute("SELECT id FROM t PREFERRING LOWEST(x)")
        }
        con = repro.connect(":memory:")
        from repro.workloads.fixtures import relation_to_sqlite

        relation_to_sqlite(con, "t", relation)
        sqlite_ids = {
            row[0]
            for row in con.execute("SELECT id FROM t PREFERRING LOWEST(x)")
        }
        con.close()
        assert engine_ids == sqlite_ids == {1, 2}


class TestEmptyAndDegenerate:
    def test_preference_on_empty_table(self, connection):
        connection.execute("CREATE TABLE empty_t (x INTEGER)")
        rows = connection.execute(
            "SELECT x FROM empty_t PREFERRING LOWEST(x)"
        ).fetchall()
        assert rows == []

    def test_single_row_always_wins(self, connection):
        connection.execute("CREATE TABLE one_t (x INTEGER)")
        connection.execute("INSERT INTO one_t VALUES (7)")
        rows = connection.execute(
            "SELECT x FROM one_t PREFERRING x AROUND 1000"
        ).fetchall()
        assert rows == [(7,)]

    def test_grouping_with_every_row_its_own_group(self, fixture_engine):
        result = fixture_engine.execute(
            "SELECT ident FROM oldtimer PREFERRING LOWEST(age) GROUPING ident"
        )
        assert len(result) == 6  # each group's only member is maximal

    def test_where_eliminates_everything(self, fixture_engine):
        result = fixture_engine.execute(
            "SELECT * FROM oldtimer WHERE age > 1000 PREFERRING LOWEST(age)"
        )
        assert len(result) == 0


class TestFloatIntegerAgreement:
    def test_mixed_numeric_types_agree(self):
        relation = Relation(
            columns=("id", "x"),
            rows=[(1, 5), (2, 5.0), (3, 4.5)],
        )
        engine = PreferenceEngine({"t": relation})
        engine_rows = engine.execute("SELECT id FROM t PREFERRING LOWEST(x)").rows
        con = repro.connect(":memory:")
        con.execute("CREATE TABLE t (id INTEGER, x REAL)")
        con.cursor().executemany("INSERT INTO t VALUES (?, ?)", relation.rows)
        sqlite_rows = con.execute("SELECT id FROM t PREFERRING LOWEST(x)").fetchall()
        con.close()
        assert engine_rows == sqlite_rows == [(3,)]
