"""Known-clean fixture: taxonomy raises, converting catch-all handlers."""

from repro.errors import DriverError


class ReplyError(DriverError):
    pass


def handle(request, run):
    if "q" not in request:
        raise DriverError("missing query")
    try:
        return run(request["q"])
    except Exception as error:
        raise ReplyError(str(error)) from error


def handle_soft(request, run):
    try:
        return run(request["q"])
    except Exception:
        return {"error": "internal"}  # converted to a structured reply
