"""Known-clean fixture: kernel loops poll, comprehensions are exempt."""

CHECK_EVERY = 1024


def active_deadline():
    return None


def scan(rows):
    deadline = active_deadline()
    total = 0
    for position, row in enumerate(rows):
        if deadline is not None and not position % CHECK_EVERY:
            deadline.check()
        total += row
    return total


def squares(rows):
    return [row * row for row in rows]  # comprehension-only: exempt
