"""Known-clean fixture: guarded state only touched under its lock."""

import threading

_count_lock = threading.Lock()
#: guarded by _count_lock
_count = 0


def bump():
    global _count
    with _count_lock:
        _count += 1


class GoodShared:
    def __init__(self):
        self._lock = threading.Lock()
        #: guarded by _lock
        self._entries = {}

    def size(self):
        with self._lock:
            return len(self._entries)

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value
