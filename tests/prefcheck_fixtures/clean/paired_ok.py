"""Known-clean fixture: every paired mutation balances on all paths."""

from multiprocessing.shared_memory import SharedMemory


class GoodGauge:
    def __init__(self):
        self._waiting = 0

    def run(self):
        self._waiting += 1
        try:
            self.work()
        finally:
            self._waiting -= 1

    def work(self):
        pass


class GoodPool:
    def use(self):
        connection = self._free.get()
        try:
            return connection.do()
        finally:
            self._free.put(connection)


class GoodTransport:
    """The RAII shape: create in __init__, unlink in close()."""

    def __init__(self):
        self._shm = SharedMemory(create=True, size=16)

    def close(self):
        self._shm.close()
        self._shm.unlink()


def good_attach(name):
    shm = SharedMemory(name=name)
    try:
        return bytes(shm.buf[:1])
    finally:
        shm.close()
