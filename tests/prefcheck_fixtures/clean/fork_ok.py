"""Known-clean fixture: lazy machinery, module-level picklable tasks."""

from concurrent.futures import ProcessPoolExecutor


def _work(item):
    return item + 1


def ship(items):
    pool = ProcessPoolExecutor()
    try:
        return list(pool.map(_work, items))
    finally:
        pool.shutdown()
