"""Known-bad fixture: a kernel-module loop without a deadline poll."""


def slow_scan(rows):
    total = 0
    for row in rows:
        total += row
    return total
