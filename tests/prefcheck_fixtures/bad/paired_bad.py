"""Known-bad fixture: unbalanced paired mutations."""

from multiprocessing.shared_memory import SharedMemory


class BadGauge:
    def __init__(self):
        self._waiting = 0

    def enter(self):
        self._waiting += 1  # no finally-guarded decrement on this path
        self.work()

    def leave(self):
        self._waiting -= 1

    def work(self):
        pass


class BadPool:
    def take(self):
        return self._free.get(timeout=1)  # no finally-guarded .put() anywhere


def leaky_create():
    shm = SharedMemory(create=True, size=16)
    return shm.name  # no reachable .unlink()


def leaky_attach(name):
    shm = SharedMemory(name=name)
    return bytes(shm.buf[:1])  # no finally-guarded .close()
