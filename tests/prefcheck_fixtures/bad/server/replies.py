"""Known-bad fixture: unclassified raise and a silent catch-all swallow."""


def handle(request, run):
    if "q" not in request:
        raise ValueError("missing query")  # outside the taxonomy
    try:
        return run(request["q"])
    except Exception:
        pass  # swallowed: the client never hears about this failure
