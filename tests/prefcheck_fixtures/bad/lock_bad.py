"""Known-bad fixture: guarded state touched outside its lock."""

import threading

_count_lock = threading.Lock()
#: guarded by _count_lock
_count = 0


def bump():
    global _count
    _count += 1  # outside 'with _count_lock'


class BadShared:
    def __init__(self):
        self._lock = threading.Lock()
        #: guarded by _lock
        self._entries = {}

    def size(self):
        return len(self._entries)  # outside 'with self._lock'

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value  # fine: under the lock
