"""Known-bad fixture: import-time machinery and unpicklable tasks."""

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

_POOL = ThreadPoolExecutor(max_workers=2)  # import-time machinery


def ship(items):
    pool = ProcessPoolExecutor()
    return list(pool.map(lambda item: item + 1, items))  # lambda task


def ship_method(executor_owner, items):
    pool = ProcessPoolExecutor()
    return list(pool.map(executor_owner.work, items))  # bound-method task
