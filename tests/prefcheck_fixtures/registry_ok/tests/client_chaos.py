"""Fixture client-side firing of the declared client point."""

from repro.testing import faults


def maybe_drop(connection):
    if faults.fire("client.thing"):
        connection.drop()
