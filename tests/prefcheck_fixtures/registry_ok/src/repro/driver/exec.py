"""Fixture call site for the declared production point."""

from repro.testing import faults


def execute(sql):
    faults.fire("driver.execute", sql=sql)
