"""Fixture registry: declared points, call sites and docs all agree."""

POINTS: dict[str, str] = {
    "driver.execute": "production",
    "client.thing": "client",
}


def fire(point, **context):
    return False
