"""Fixture: a suppression without a reason is itself a finding."""

import threading


class RacyRead:
    def __init__(self):
        self._lock = threading.Lock()
        #: guarded by _lock
        self._closed = False

    def fast(self):
        # prefcheck: disable=lock-discipline
        return self._closed
