"""Fixture: a reasoned suppression silences exactly its finding."""

import threading


class RacyRead:
    def __init__(self):
        self._lock = threading.Lock()
        #: guarded by _lock
        self._closed = False

    def fast(self):
        # prefcheck: disable=lock-discipline -- deliberately racy fast-fail read; callers re-check under the lock
        return self._closed
