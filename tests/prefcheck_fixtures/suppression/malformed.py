"""Fixture: an unparseable prefcheck comment is reported, not ignored."""

# prefcheck: disalbe=lock-discipline -- typo in the directive
VALUE = 1
