"""Fixture call sites: one declared, one undeclared, one non-literal."""

from repro.testing import faults


def execute(sql, point_name):
    faults.fire("driver.execute", sql=sql)
    faults.fire("undeclared.point")
    faults.fire(point_name)
