"""Fixture registry: a dead point, a bad firer, and no client coverage."""

POINTS: dict[str, str] = {
    "driver.execute": "production",
    "ghost.point": "production",
    "client.thing": "client",
    "weird.point": "sometimes",
}


def fire(point, **context):
    return False
