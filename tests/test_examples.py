"""Every example script must run cleanly from a fresh interpreter state."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys, monkeypatch):
    # job_search accepts argv; keep it small for the test run.
    monkeypatch.setattr(sys, "argv", [str(script), "5000"])
    runpy.run_path(str(script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script.name} printed nothing"


def test_examples_exist():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "car_dealer",
        "job_search",
        "eshop_search",
        "mobile_search",
        "cosima_shopping",
    } <= names
