"""Tokenizer unit tests."""

import pytest

from repro.errors import LexerError
from repro.sql.lexer import tokenize
from repro.sql.tokens import TokenType


def kinds(text):
    return [(t.type, t.value) for t in tokenize(text) if t.type is not TokenType.EOF]


class TestBasicTokens:
    def test_keywords_are_case_insensitive(self):
        for text in ("select", "SELECT", "SeLeCt"):
            tokens = tokenize(text)
            assert tokens[0].type is TokenType.KEYWORD
            assert tokens[0].value == "SELECT"

    def test_preference_keywords(self):
        for keyword in ("PREFERRING", "CASCADE", "AROUND", "LOWEST", "HIGHEST",
                        "GROUPING", "BUT", "ONLY", "CONTAINS", "EXPLICIT",
                        "TOP", "LEVEL", "DISTANCE", "PREFERENCE", "SCORE"):
            token = tokenize(keyword.lower())[0]
            assert token.type is TokenType.KEYWORD
            assert token.value == keyword

    def test_identifier_keeps_spelling(self):
        token = tokenize("MainMemory")[0]
        assert token.type is TokenType.IDENT
        assert token.value == "MainMemory"

    def test_identifier_with_underscore_and_digits(self):
        assert kinds("skill_01") == [(TokenType.IDENT, "skill_01")]

    def test_eof_token_always_last(self):
        tokens = tokenize("x")
        assert tokens[-1].type is TokenType.EOF

    def test_empty_input(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF


class TestNumbers:
    def test_integer(self):
        assert kinds("40000") == [(TokenType.NUMBER, "40000")]

    def test_float(self):
        assert kinds("0.9") == [(TokenType.NUMBER, "0.9")]

    def test_leading_dot_float(self):
        assert kinds(".5") == [(TokenType.NUMBER, ".5")]

    def test_exponent(self):
        assert kinds("1e15") == [(TokenType.NUMBER, "1e15")]
        assert kinds("2.5E-3") == [(TokenType.NUMBER, "2.5E-3")]

    def test_number_then_dot_dot_is_not_consumed(self):
        values = kinds("1.2.3")
        assert values[0] == (TokenType.NUMBER, "1.2")

    def test_exponent_without_digits_stops(self):
        # `1e` is number 1 followed by identifier e
        assert kinds("1e") == [(TokenType.NUMBER, "1"), (TokenType.IDENT, "e")]


class TestStrings:
    def test_simple_string(self):
        assert kinds("'java'") == [(TokenType.STRING, "java")]

    def test_escaped_quote(self):
        assert kinds("'it''s'") == [(TokenType.STRING, "it's")]

    def test_empty_string(self):
        assert kinds("''") == [(TokenType.STRING, "")]

    def test_string_with_spaces_and_keywords(self):
        assert kinds("'SELECT around'") == [(TokenType.STRING, "SELECT around")]

    def test_unterminated_string_raises(self):
        with pytest.raises(LexerError):
            tokenize("'oops")

    def test_quoted_identifier(self):
        assert kinds('"LEVEL(color)"') == [(TokenType.IDENT, "LEVEL(color)")]

    def test_quoted_identifier_escape(self):
        assert kinds('"a""b"') == [(TokenType.IDENT, 'a"b')]

    def test_empty_quoted_identifier_raises(self):
        with pytest.raises(LexerError):
            tokenize('""')

    def test_unterminated_quoted_identifier_raises(self):
        with pytest.raises(LexerError):
            tokenize('"oops')


class TestOperators:
    def test_multi_char_operators_greedy(self):
        assert kinds("<= >= <> != ||") == [
            (TokenType.OPERATOR, "<="),
            (TokenType.OPERATOR, ">="),
            (TokenType.OPERATOR, "<>"),
            (TokenType.OPERATOR, "!="),
            (TokenType.OPERATOR, "||"),
        ]

    def test_single_char_operators(self):
        text = "= < > + - * / % ( ) , . ; [ ]"
        values = [v for _t, v in kinds(text)]
        assert values == text.split()

    def test_parameter_marker(self):
        assert kinds("?") == [(TokenType.PARAM, "?")]

    def test_unknown_character_raises_with_position(self):
        with pytest.raises(LexerError) as info:
            tokenize("a @ b")
        assert info.value.column == 3
        assert info.value.line == 1


class TestCommentsAndWhitespace:
    def test_line_comment(self):
        assert kinds("a -- comment\n b") == [
            (TokenType.IDENT, "a"),
            (TokenType.IDENT, "b"),
        ]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [
            (TokenType.IDENT, "a"),
            (TokenType.IDENT, "b"),
        ]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexerError):
            tokenize("a /* never closed")

    def test_newlines_advance_line_numbers(self):
        tokens = tokenize("a\nb\n  c")
        assert [t.line for t in tokens[:3]] == [1, 2, 3]
        assert tokens[2].column == 3


class TestRealQueries:
    def test_paper_query_token_stream(self):
        tokens = tokenize("SELECT * FROM trips PREFERRING duration AROUND 14;")
        values = [t.value for t in tokens if t.type is not TokenType.EOF]
        assert values == [
            "SELECT", "*", "FROM", "trips", "PREFERRING", "duration",
            "AROUND", "14", ";",
        ]

    def test_token_helpers(self):
        token = tokenize("PREFERRING")[0]
        assert token.is_keyword("PREFERRING")
        assert token.is_keyword("SELECT", "PREFERRING")
        assert not token.is_keyword("SELECT")
        op = tokenize("<=")[0]
        assert op.is_operator("<=")
        assert not op.is_operator("<")
