"""Building preference objects from parsed PREFERRING clauses."""

import pytest

from repro.errors import PreferenceConstructionError
from repro.model.builder import build_preference, literal_value
from repro.model.categorical import ExplicitPreference, LayeredPreference
from repro.model.composite import ParetoPreference, PrioritizationPreference
from repro.model.numeric import (
    AroundPreference,
    BetweenPreference,
    HighestPreference,
    LowestPreference,
    ScorePreference,
)
from repro.model.text import ContainsPreference
from repro.sql import ast
from repro.sql.parser import parse_preferring


def build(text, resolver=None):
    return build_preference(parse_preferring(text), resolver=resolver)


class TestBaseTypes:
    def test_around(self):
        pref = build("duration AROUND 14")
        assert isinstance(pref, AroundPreference)
        assert pref.target == 14

    def test_around_negative_target(self):
        pref = build("t AROUND -5")
        assert pref.target == -5

    def test_between(self):
        pref = build("price BETWEEN 1500, 2000")
        assert isinstance(pref, BetweenPreference)
        assert (pref.low, pref.high) == (1500, 2000)

    def test_lowest_highest_score(self):
        assert isinstance(build("LOWEST(m)"), LowestPreference)
        assert isinstance(build("HIGHEST(m)"), HighestPreference)
        assert isinstance(build("SCORE(m)"), ScorePreference)

    def test_pos(self):
        pref = build("exp IN ('java', 'C++')")
        assert isinstance(pref, LayeredPreference)
        assert pref.level(("java",)) == 0
        assert pref.level(("perl",)) == 1

    def test_neg(self):
        pref = build("location <> 'downtown'")
        assert pref.level(("downtown",)) == 1

    def test_contains(self):
        pref = build("description CONTAINS 'sea view'")
        assert isinstance(pref, ContainsPreference)
        assert pref.terms == ("sea", "view")

    def test_contains_requires_string(self):
        with pytest.raises(PreferenceConstructionError):
            build("description CONTAINS 42")

    def test_explicit(self):
        pref = build("EXPLICIT(color, 'red' > 'blue')")
        assert isinstance(pref, ExplicitPreference)
        assert pref.is_better(("red",), ("blue",))

    def test_numeric_values_in_pos(self):
        pref = build("doors IN (3, 5)")
        assert pref.level((5,)) == 0
        assert pref.level((4,)) == 1


class TestComposition:
    def test_pareto(self):
        pref = build("LOWEST(a) AND HIGHEST(b)")
        assert isinstance(pref, ParetoPreference)
        assert len(pref.children()) == 2

    def test_cascade(self):
        pref = build("LOWEST(a) CASCADE HIGHEST(b)")
        assert isinstance(pref, PrioritizationPreference)

    def test_flat_chains(self):
        pref = build("LOWEST(a) AND LOWEST(b) AND LOWEST(c)")
        assert len(pref.children()) == 3

    def test_nested(self):
        pref = build("(LOWEST(a) AND LOWEST(b)) CASCADE c = 'x'")
        assert isinstance(pref, PrioritizationPreference)
        assert isinstance(pref.children()[0], ParetoPreference)

    def test_else_builds_single_layered(self):
        pref = build("c = 'a' ELSE c = 'b'")
        assert isinstance(pref, LayeredPreference)
        assert len(pref.buckets) == 3


class TestLiteralValue:
    def test_plain(self):
        assert literal_value(ast.Literal(value=7)) == 7

    def test_negated(self):
        expr = ast.Unary(op="-", operand=ast.Literal(value=7))
        assert literal_value(expr) == -7

    def test_unary_plus(self):
        expr = ast.Unary(op="+", operand=ast.Literal(value=7))
        assert literal_value(expr) == 7

    def test_negating_string_rejected(self):
        expr = ast.Unary(op="-", operand=ast.Literal(value="x"))
        with pytest.raises(PreferenceConstructionError):
            literal_value(expr)

    def test_non_constant_rejected(self):
        with pytest.raises(PreferenceConstructionError):
            literal_value(ast.Column(name="x"))

    def test_around_with_column_target_rejected(self):
        with pytest.raises(PreferenceConstructionError):
            build("a AROUND b")


class TestNamedPreferences:
    def test_resolution(self):
        def resolver(name):
            assert name == "cheap"
            return parse_preferring("LOWEST(price)")

        pref = build("PREFERENCE cheap", resolver=resolver)
        assert isinstance(pref, LowestPreference)

    def test_without_resolver_raises(self):
        with pytest.raises(PreferenceConstructionError):
            build("PREFERENCE cheap")

    def test_named_inside_composition(self):
        def resolver(name):
            return parse_preferring("LOWEST(price)")

        pref = build("PREFERENCE cheap AND HIGHEST(power)", resolver=resolver)
        assert isinstance(pref, ParetoPreference)

    def test_named_layered_inside_else(self):
        def resolver(name):
            return parse_preferring("color = 'red'")

        pref = build("PREFERENCE reds ELSE color = 'blue'", resolver=resolver)
        assert isinstance(pref, LayeredPreference)
        assert pref.level(("red",)) == 0
        assert pref.level(("blue",)) == 1
