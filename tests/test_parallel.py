"""The partitioned parallel skyline executor.

Covers the executor against the paper's abstract selection method (the
semantics oracle), the partition-merge lemma on arbitrary partitionings,
the worker-pool lifecycle, and the engine/driver integration of
``algorithm="parallel"``.
"""

import os

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

import repro
from repro.engine.algorithms import maximal_indices, nested_loop_maximal
from repro.engine.bmo import bmo_filter
from repro.engine.compiled import best_better, flat_rank_rows
from repro.engine.parallel import (
    ParallelExecutor,
    default_worker_count,
    hash_partitions,
    local_skyline,
    parallel_maximal_indices,
    partition_count,
)
from repro.errors import EvaluationError
from repro.model.builder import build_preference
from repro.sql.parser import parse_preferring

PREFERENCES = [
    "LOWEST(d0) AND HIGHEST(d1)",
    "LOWEST(d0) CASCADE LOWEST(d1)",
    "d0 AROUND 5 AND LOWEST(d1)",
    "(LOWEST(d0) AND LOWEST(d1)) CASCADE HIGHEST(d0)",
    "EXPLICIT(d0, 'a' > 'b', 'b' > 'c') AND LOWEST(d1)",
]

vectors_strategy = st.lists(
    st.tuples(st.integers(0, 9), st.integers(0, 9)), min_size=0, max_size=60
)


def _prepare(clause, vectors):
    """Expand drawn value pairs to the preference's flat operand arity."""
    preference = build_preference(parse_preferring(clause))
    if "EXPLICIT" in clause:
        letters = "abcd"
        vectors = [(letters[v[0] % 4], v[1]) for v in vectors]
    arity = preference.arity
    vectors = [tuple(v[k % len(v)] for k in range(arity)) for v in vectors]
    return preference, vectors


class TestPartitionMergeLemma:
    """max(∪ max(P_i)) == max(∪ P_i) for arbitrary partitionings."""

    @given(vectors=vectors_strategy, data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_merge_of_local_skylines_is_global_skyline(self, vectors, data):
        clause = data.draw(st.sampled_from(PREFERENCES))
        preference, vectors = _prepare(clause, vectors)
        # An arbitrary partitioning: every row draws its partition id.
        assignment = [
            data.draw(st.integers(0, 4), label=f"partition[{i}]")
            for i in range(len(vectors))
        ]
        partitions: dict[int, list[int]] = {}
        for index, part in enumerate(assignment):
            partitions.setdefault(part, []).append(index)

        better = best_better(preference, vectors)
        union = sorted(
            i
            for members in partitions.values()
            for i in local_skyline(better, members)
        )
        merged = sorted(local_skyline(better, union))
        oracle = sorted(nested_loop_maximal(preference, vectors))
        assert merged == oracle, clause

    @given(vectors=vectors_strategy, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_executor_matches_oracle(self, vectors, data):
        clause = data.draw(st.sampled_from(PREFERENCES))
        workers = data.draw(st.sampled_from([1, 2, 4]))
        preference, vectors = _prepare(clause, vectors)
        oracle = sorted(nested_loop_maximal(preference, vectors))
        with ParallelExecutor(max_workers=workers, min_partition_rows=8) as ex:
            assert ex.maximal_indices(preference, vectors) == oracle

    @given(vectors=vectors_strategy, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_grouped_executor_matches_serial_grouping(self, vectors, data):
        clause = data.draw(st.sampled_from(PREFERENCES))
        preference, vectors = _prepare(clause, vectors)
        keys = [data.draw(st.integers(0, 3), label=f"g[{i}]") for i in range(len(vectors))]
        serial = bmo_filter(preference, vectors, group_keys=keys, algorithm="bnl")
        with ParallelExecutor(max_workers=2, min_partition_rows=8) as ex:
            parallel = ex.grouped_maximal_indices(preference, vectors, keys)
        assert parallel == serial, clause


class TestFlatRankRows:
    def test_flat_pareto_compiles(self):
        preference = build_preference(parse_preferring("LOWEST(a) AND HIGHEST(b)"))
        rows, mode = flat_rank_rows(preference, [(1, 2), (3, 4)])
        assert mode == "pareto"
        assert len(rows) == 2 and len(rows[0]) == 2

    def test_single_base_is_cascade(self):
        preference = build_preference(parse_preferring("LOWEST(a)"))
        rows, mode = flat_rank_rows(preference, [(5,), (1,)])
        assert mode == "cascade"
        assert rows[1] < rows[0]

    def test_nested_tree_returns_none(self):
        preference = build_preference(
            parse_preferring("(LOWEST(a) AND LOWEST(b)) CASCADE HIGHEST(a)")
        )
        assert flat_rank_rows(preference, [(1, 2, 3), (4, 5, 6)]) is None

    def test_explicit_returns_none(self):
        preference = build_preference(
            parse_preferring("EXPLICIT(c, 'x' > 'y')")
        )
        assert flat_rank_rows(preference, [("x",), ("y",)]) is None

    def test_unparseable_text_ranks_as_null_rank_on_both_paths(self):
        # Built-ins never rank to NaN: unparseable text maps to NULL_RANK,
        # which is totally ordered (worst) — both paths agree.
        preference = build_preference(parse_preferring("LOWEST(a) AND LOWEST(b)"))
        vectors = [(1, 1), ("junk", 0), (2, 2)]
        serial = sorted(nested_loop_maximal(preference, vectors))
        assert parallel_maximal_indices(preference, vectors) == serial
        assert serial == [0, 1]  # NULL_RANK loses on a, wins on b

    def test_custom_nan_ranks_match_serial_closures(self):
        # Only a custom rank() can produce NaN; the flat core must then
        # reproduce the serial closure semantics in both modes.
        from repro.model.composite import (
            ParetoPreference,
            PrioritizationPreference,
        )
        from repro.model.preference import WeakOrderBase
        from repro.sql import ast

        class NanLowest(WeakOrderBase):
            kind = "NAN-LOWEST"

            def rank(self, value):
                return float("nan") if value is None else float(value)

        def bases():
            return [NanLowest(ast.Column(name=c)) for c in ("a", "b")]

        vectors = [(1, None), (2, 3), (0, 5), (None, None), (2, 3)]
        for composite in (ParetoPreference(bases()), PrioritizationPreference(bases())):
            serial = sorted(nested_loop_maximal(composite, vectors))
            assert parallel_maximal_indices(composite, vectors) == serial, (
                composite.kind
            )
        # Cascade specifically: (1, NaN) lexicographically beats (2, 3) on
        # the NaN-free prefix, so the NaN row must not be a blanket winner.
        cascade = PrioritizationPreference(bases())
        assert parallel_maximal_indices(cascade, vectors) == sorted(
            nested_loop_maximal(cascade, vectors)
        )
        assert 1 not in parallel_maximal_indices(cascade, vectors)


class TestPartitioning:
    def test_partition_count_scales_with_workers(self):
        assert partition_count(10_000, 1) <= partition_count(10_000, 4)
        assert partition_count(0, 4) == 1
        assert partition_count(100, 4, min_partition_rows=64) == 1
        assert partition_count(10_000, 4, min_partition_rows=64) == 8

    def test_hash_partitions_cover_and_balance(self):
        parts = hash_partitions(list(range(10)), 3)
        assert sorted(i for part in parts for i in part) == list(range(10))
        sizes = [len(part) for part in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_hash_partitions_single(self):
        assert hash_partitions([1, 2], 1) == [[1, 2]]


class TestExecutorLifecycle:
    def test_worker_degree_validation(self):
        with pytest.raises(EvaluationError):
            ParallelExecutor(max_workers=0)

    def test_default_worker_count_positive(self):
        assert default_worker_count() >= 1

    def test_closed_executor_rejects_work(self):
        preference = build_preference(parse_preferring("LOWEST(a)"))
        executor = ParallelExecutor(max_workers=2, min_partition_rows=1)
        vectors = [(i,) for i in range(16)]
        assert executor.maximal_indices(preference, vectors) == [0]
        executor.close()
        with pytest.raises(EvaluationError):
            executor.maximal_indices(preference, vectors)

    def test_pool_only_spawns_when_useful(self):
        executor = ParallelExecutor(max_workers=1)
        preference = build_preference(parse_preferring("LOWEST(a)"))
        executor.maximal_indices(preference, [(i,) for i in range(500)])
        assert executor._pool is None  # inline execution, no threads
        executor.close()

    def test_threaded_pool_produces_same_result(self):
        preference = build_preference(
            parse_preferring("LOWEST(d0) AND HIGHEST(d1)")
        )
        vectors = [((i * 13) % 97, (i * 29) % 89) for i in range(800)]
        oracle = sorted(nested_loop_maximal(preference, vectors))
        with ParallelExecutor(max_workers=4, min_partition_rows=32) as ex:
            assert ex.maximal_indices(preference, vectors) == oracle
            assert ex._pool is not None  # the pool really ran


class TestEngineIntegration:
    def test_maximal_indices_accepts_parallel(self):
        preference = build_preference(parse_preferring("LOWEST(a)"))
        vectors = [(3,), (1,), (1,), (2,)]
        assert maximal_indices(preference, vectors, "parallel") == [1, 2]

    def test_unknown_algorithm_mentions_parallel(self):
        preference = build_preference(parse_preferring("LOWEST(a)"))
        with pytest.raises(EvaluationError, match="parallel"):
            maximal_indices(preference, [(1,)], "quantum")

    def test_engine_parallel_algorithm(self, fixture_engine):
        sql = (
            "SELECT * FROM car PREFERRING LOWEST(price) AND HIGHEST(power) "
            "GROUPING category"
        )
        serial = fixture_engine.execute(sql).rows
        parallel_engine = repro.PreferenceEngine(algorithm="parallel")
        for name in fixture_engine._relations:
            parallel_engine.register(name, fixture_engine.relation(name))
        try:
            assert parallel_engine.execute(sql).rows == serial
        finally:
            parallel_engine.close()

    def test_driver_parallel_with_but_only_and_grouping(self, fixture_connection):
        sql = (
            "SELECT * FROM oldtimer "
            "PREFERRING color = 'white' ELSE color = 'yellow' "
            "GROUPING age BUT ONLY LEVEL(color) <= 2"
        )
        rewrite = fixture_connection.execute(sql, algorithm="rewrite").fetchall()
        parallel = fixture_connection.execute(sql, algorithm="parallel").fetchall()
        assert parallel == rewrite

    def test_connection_shares_one_executor(self, fixture_connection):
        first = fixture_connection.parallel_executor
        fixture_connection.execute(
            "SELECT * FROM car PREFERRING LOWEST(price)", algorithm="parallel"
        ).fetchall()
        assert fixture_connection.parallel_executor is first
        fixture_connection.max_workers = 2
        assert fixture_connection.parallel_executor is not first


class TestProcessBackend:
    """The process-pool path: shared-memory transport, parity, fallback."""

    PARETO = "LOWEST(d0) AND HIGHEST(d1)"
    CASCADE = "LOWEST(d0) CASCADE LOWEST(d1)"

    @staticmethod
    def _vectors(n=700):
        return [((i * 13) % 97, (i * 29) % 89) for i in range(n)]

    def test_backend_validation(self):
        with pytest.raises(EvaluationError, match="backend"):
            ParallelExecutor(backend="quantum")

    def test_transport_roundtrip_in_process(self):
        from repro.engine.columns import columnar_skyline, compute_rank_columns
        from repro.engine.shm import RankTransport, skyline_worker

        preference = build_preference(parse_preferring(self.PARETO))
        vectors = self._vectors(400)
        ranks = compute_rank_columns(preference, vectors)
        candidates = list(range(len(vectors)))
        with RankTransport(ranks, candidates) as transport:
            local = [
                winners
                for k in range(3)
                if (winners := skyline_worker(transport.task(k, 3)))
            ]
        union = sorted(i for part in local for i in part)
        survivors = sorted(columnar_skyline(ranks, union))
        assert survivors == sorted(columnar_skyline(ranks, candidates))

    @pytest.mark.parametrize("clause", [PARETO, CASCADE])
    def test_forced_process_backend_matches_oracle(self, clause):
        preference = build_preference(parse_preferring(clause))
        vectors = self._vectors()
        oracle = sorted(nested_loop_maximal(preference, vectors))
        with ParallelExecutor(
            max_workers=2, min_partition_rows=32, backend="process"
        ) as executor:
            assert executor.maximal_indices(preference, vectors) == oracle
            assert executor.last_backend == "process"

    def test_process_backend_on_candidate_subset(self):
        preference = build_preference(parse_preferring(self.PARETO))
        vectors = self._vectors()
        subset = [i for i in range(len(vectors)) if i % 3 != 0]
        restricted = [vectors[i] for i in subset]
        oracle = sorted(
            subset[j] for j in nested_loop_maximal(preference, restricted)
        )
        with ParallelExecutor(
            max_workers=2, min_partition_rows=32, backend="process"
        ) as executor:
            assert (
                executor.maximal_indices(preference, vectors, candidates=subset)
                == oracle
            )
            assert executor.last_backend == "process"

    def test_process_backend_with_caller_ranks(self):
        from repro.engine.columns import compute_rank_columns

        preference = build_preference(parse_preferring(self.PARETO))
        vectors = self._vectors()
        ranks = compute_rank_columns(preference, vectors)
        oracle = sorted(nested_loop_maximal(preference, vectors))
        with ParallelExecutor(
            max_workers=2, min_partition_rows=32, backend="process"
        ) as executor:
            assert (
                executor.maximal_indices(preference, None, ranks=ranks)
                == oracle
            )
            assert executor.last_backend == "process"

    def test_process_backend_nan_ranks(self):
        from repro.model.composite import ParetoPreference
        from repro.model.preference import WeakOrderBase
        from repro.sql import ast as _ast

        class NanLowest(WeakOrderBase):
            kind = "NAN-LOWEST"

            def rank(self, value):
                return float("nan") if value is None else float(value)

        preference = ParetoPreference(
            [NanLowest(_ast.Column(name=c)) for c in ("a", "b")]
        )
        vectors = [
            ((i % 7) if i % 11 else None, (i * 3) % 5) for i in range(600)
        ]
        oracle = sorted(nested_loop_maximal(preference, vectors))
        with ParallelExecutor(
            max_workers=2, min_partition_rows=32, backend="process"
        ) as executor:
            assert executor.maximal_indices(preference, vectors) == oracle
            assert executor.last_backend == "process"

    def test_auto_backend_needs_scale_and_mode(self):
        from repro.engine.parallel import (
            PROCESS_MIN_ROWS,
            process_backend_eligible,
        )

        assert process_backend_eligible("pareto", PROCESS_MIN_ROWS, 4)
        assert not process_backend_eligible("pareto", PROCESS_MIN_ROWS - 1, 4)
        assert not process_backend_eligible(None, PROCESS_MIN_ROWS, 4)
        assert not process_backend_eligible("pareto", PROCESS_MIN_ROWS, 1)
        assert not process_backend_eligible(
            "pareto", PROCESS_MIN_ROWS, 4, backend="thread"
        )
        assert process_backend_eligible("pareto", 10, 4, backend="process")

    def test_auto_backend_stays_serial_on_small_inputs(self):
        preference = build_preference(parse_preferring(self.PARETO))
        with ParallelExecutor(max_workers=2) as executor:
            executor.maximal_indices(preference, self._vectors(50))
            assert executor.last_backend == "serial"

    def test_explicit_preferences_never_take_process_path(self):
        # EXPLICIT trees have no rank columns (mode None): even a forced
        # process backend must fall back to the thread/closure core.
        preference = build_preference(
            parse_preferring("EXPLICIT(d0, 'a' > 'b') AND LOWEST(d1)")
        )
        vectors = [("a" if i % 2 else "b", i % 17) for i in range(500)]
        oracle = sorted(nested_loop_maximal(preference, vectors))
        with ParallelExecutor(
            max_workers=2, min_partition_rows=32, backend="process"
        ) as executor:
            assert executor.maximal_indices(preference, vectors) == oracle
            assert executor.last_backend != "process"

    def test_broken_transport_falls_back_to_threads(self, monkeypatch):
        import repro.engine.parallel as parallel_module

        class ExplodingTransport:
            def __init__(self, *args, **kwargs):
                raise OSError("no shared memory left")

        monkeypatch.setattr(parallel_module, "RankTransport", ExplodingTransport)
        preference = build_preference(parse_preferring(self.PARETO))
        vectors = self._vectors()
        oracle = sorted(nested_loop_maximal(preference, vectors))
        with ParallelExecutor(
            max_workers=2, min_partition_rows=32, backend="process"
        ) as executor:
            assert executor.maximal_indices(preference, vectors) == oracle
            assert executor.last_backend != "process"

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="needs os.fork")
    def test_fork_after_parallel_query_resets_shared_executor(self):
        """The satellite bugfix: a forked child inherits the parent's
        thread-pool state but none of its worker threads; without the
        after-fork reset, the child's first parallel query deadlocks on
        a pool whose threads do not exist."""
        import repro.engine.parallel as parallel_module
        from repro.engine.parallel import parallel_maximal_indices, shared_executor

        preference = build_preference(parse_preferring(self.PARETO))
        vectors = self._vectors(900)
        expected = parallel_maximal_indices(preference, vectors)
        parent_executor = shared_executor()
        # Force pool creation so the child inherits a "warm" executor.
        parent_executor.maximal_indices(preference, vectors)

        pid = os.fork()
        if pid == 0:  # pragma: no cover - exercised in the child process
            status = 1
            try:
                assert parallel_module._shared_executor is None
                child_result = parallel_maximal_indices(preference, vectors)
                if child_result == expected:
                    status = 0
            finally:
                os._exit(status)
        _pid, wait_status = os.waitpid(pid, 0)
        assert os.WIFEXITED(wait_status) and os.WEXITSTATUS(wait_status) == 0
        # The parent's executor is untouched by the child's reset.
        assert shared_executor() is parent_executor
        assert parent_executor.maximal_indices(preference, vectors) == expected
