"""Materialized preference views: statements, maintenance, planning.

Covers the full stack of the view subsystem — parser/printer for the new
PDL statements, catalog persistence, the CREATE-time maintainability
analysis, the incremental maintenance engine (insert dominance test,
bounded re-derivation, flagged recompute fallbacks), the driver's DML
interception (including the leading-comment and CTE regression cases)
and the planner's view-answering path with its EXPLAIN PREFERENCE rows.
"""

import pytest

import repro
from repro.driver.dbapi import _preference_dml_target
from repro.engine.incremental import analyze_view, validate_view
from repro.errors import CatalogError, DriverError, ParseError
from repro.sql import ast
from repro.sql.parser import parse_statement
from repro.sql.printer import to_sql


def fresh_connection():
    connection = repro.connect(":memory:")
    connection.execute("CREATE TABLE items (a INTEGER, b INTEGER, g TEXT)")
    connection.execute(
        "INSERT INTO items VALUES (1, 9, 'p'), (2, 8, 'p'), (5, 5, 'q'), (9, 1, 'q')"
    )
    return connection


VIEW_QUERY = "SELECT * FROM items PREFERRING LOWEST(a) AND LOWEST(b)"


def oracle(connection, query=VIEW_QUERY):
    return sorted(connection.execute(query, algorithm="bnl").fetchall(), key=repr)


def materialized(connection, name="best"):
    return sorted(
        connection.raw.execute(f"SELECT * FROM {name}").fetchall(), key=repr
    )


# ----------------------------------------------------------------------
# Statements: parse and print


def test_view_statements_round_trip():
    create = parse_statement(f"CREATE PREFERENCE VIEW best AS {VIEW_QUERY}")
    assert isinstance(create, ast.CreatePreferenceView)
    assert create.name == "best"
    assert to_sql(create) == f"CREATE PREFERENCE VIEW best AS {VIEW_QUERY}"
    assert parse_statement(to_sql(create)) == create

    drop = parse_statement("DROP PREFERENCE VIEW best")
    assert isinstance(drop, ast.DropPreferenceView)
    assert parse_statement(to_sql(drop)) == drop


def test_view_statement_parse_errors():
    with pytest.raises(ParseError):
        parse_statement("CREATE PREFERENCE VIEW best AS INSERT INTO t VALUES (1)")
    with pytest.raises(ParseError):
        parse_statement("DROP PREFERENCE VIEW")


def test_plain_preference_statements_still_parse():
    statement = parse_statement("CREATE PREFERENCE cheap ON items AS LOWEST(a)")
    assert isinstance(statement, ast.CreatePreference)
    assert isinstance(parse_statement("DROP PREFERENCE cheap"), ast.DropPreference)


# ----------------------------------------------------------------------
# CREATE-time analysis


def _query(sql):
    statement = parse_statement(sql)
    assert isinstance(statement, ast.Select)
    return statement


def test_analysis_accepts_the_maintainable_shape():
    analysis = analyze_view(
        _query("SELECT * FROM items WHERE a < 10 PREFERRING LOWEST(a) GROUPING g")
    )
    assert analysis.maintainable
    assert analysis.base_table == "items"
    assert analysis.base_tables == ("items",)


@pytest.mark.parametrize(
    "sql, fragment",
    [
        ("SELECT * FROM items, items i2 PREFERRING LOWEST(a)", "single base table"),
        ("SELECT a FROM items PREFERRING LOWEST(a)", "projection"),
        (
            "SELECT * FROM items PREFERRING a AROUND 3 BUT ONLY DISTANCE(a) <= 1",
            "BUT ONLY",
        ),
        ("SELECT * FROM items PREFERRING LOWEST(a) ORDER BY b", "ORDER BY"),
        ("SELECT * FROM items PREFERRING LOWEST(a) LIMIT 2", "LIMIT"),
        ("SELECT DISTINCT * FROM items PREFERRING LOWEST(a)", "DISTINCT"),
        (
            "SELECT * FROM items WHERE a IN (SELECT b FROM items) "
            "PREFERRING LOWEST(a)",
            "sub-queries",
        ),
    ],
)
def test_analysis_routes_hard_shapes_to_recompute(sql, fragment):
    analysis = analyze_view(_query(sql))
    assert not analysis.maintainable
    assert fragment in analysis.reason


def test_validation_rejects_parameters_and_missing_preferring():
    with pytest.raises(CatalogError):
        validate_view(_query("SELECT * FROM items WHERE a = 1"))
    with pytest.raises(CatalogError):
        validate_view(_query("SELECT * FROM items WHERE a = ? PREFERRING LOWEST(a)"))


# ----------------------------------------------------------------------
# Lifecycle through the driver


def test_create_materializes_and_drop_cleans_up():
    connection = fresh_connection()
    connection.execute(f"CREATE PREFERENCE VIEW best AS {VIEW_QUERY}")
    entries = connection.views()
    assert [entry.name for entry in entries] == ["best"]
    assert entries[0].maintainable
    assert materialized(connection) == oracle(connection)

    connection.execute("DROP PREFERENCE VIEW best")
    assert connection.views() == []
    tables = {
        row[0]
        for row in connection.raw.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table'"
        )
    }
    assert "best" not in tables
    connection.close()


def test_duplicate_and_unknown_view_names_raise():
    connection = fresh_connection()
    connection.execute(f"CREATE PREFERENCE VIEW best AS {VIEW_QUERY}")
    with pytest.raises(CatalogError):
        connection.execute(f"CREATE PREFERENCE VIEW best AS {VIEW_QUERY}")
    with pytest.raises(CatalogError):
        connection.execute("DROP PREFERENCE VIEW missing")
    connection.close()


def test_create_over_existing_table_name_fails_cleanly():
    connection = fresh_connection()
    with pytest.raises(DriverError):
        connection.execute(f"CREATE PREFERENCE VIEW items AS {VIEW_QUERY}")
    # The failed creation must not leave a catalog entry behind.
    assert connection.views() == []
    connection.close()


def test_view_without_preferring_is_rejected():
    connection = fresh_connection()
    with pytest.raises(CatalogError):
        connection.execute("CREATE PREFERENCE VIEW best AS SELECT * FROM items")
    connection.close()


# ----------------------------------------------------------------------
# Incremental maintenance semantics


def test_insert_promotes_and_evicts():
    connection = fresh_connection()
    connection.execute(f"CREATE PREFERENCE VIEW best AS {VIEW_QUERY}")
    connection.execute("INSERT INTO items VALUES (0, 0, 'r')")
    assert materialized(connection) == [(0, 0, "r")] == oracle(connection)
    stats = connection.view_maintenance_stats()["best"]
    assert stats.get("incremental") == 1
    connection.close()


def test_dominated_insert_leaves_members_alone():
    connection = fresh_connection()
    connection.execute(f"CREATE PREFERENCE VIEW best AS {VIEW_QUERY}")
    before = materialized(connection)
    connection.execute("INSERT INTO items VALUES (10, 10, 'r')")
    assert materialized(connection) == before == oracle(connection)
    connection.close()


def test_delete_of_dominated_row_is_a_noop():
    connection = fresh_connection()
    connection.execute("INSERT INTO items VALUES (10, 10, 'r')")
    connection.execute(f"CREATE PREFERENCE VIEW best AS {VIEW_QUERY}")
    connection.execute("DELETE FROM items WHERE a = 10")
    stats = connection.view_maintenance_stats()["best"]
    assert stats.get("noop") == 1
    assert materialized(connection) == oracle(connection)
    connection.close()


def test_delete_of_member_re_derives_promoted_rows():
    connection = fresh_connection()
    connection.execute("INSERT INTO items VALUES (0, 0, 'r')")
    connection.execute(f"CREATE PREFERENCE VIEW best AS {VIEW_QUERY}")
    assert materialized(connection) == [(0, 0, "r")]
    connection.execute("DELETE FROM items WHERE a = 0")
    assert materialized(connection) == oracle(connection)
    stats = connection.view_maintenance_stats()["best"]
    assert stats.get("re-derive") == 1
    connection.close()


def test_grouped_delete_only_re_derives_affected_partitions():
    connection = fresh_connection()
    query = "SELECT * FROM items PREFERRING LOWEST(a) AND LOWEST(b) GROUPING g"
    connection.execute(f"CREATE PREFERENCE VIEW best AS {query}")
    # (5, 5, 'q') and (9, 1, 'q') are both maximal in group q; deleting
    # one must re-derive q while group p's members survive untouched.
    connection.execute("DELETE FROM items WHERE a = 5")
    assert materialized(connection) == oracle(connection, query)
    stats = connection.view_maintenance_stats()["best"]
    assert stats.get("re-derive") == 1
    connection.close()


def test_update_of_member_and_of_dominated_row():
    connection = fresh_connection()
    connection.execute(f"CREATE PREFERENCE VIEW best AS {VIEW_QUERY}")
    # Update a member out of its winning position.
    connection.execute("UPDATE items SET a = 50 WHERE a = 1")
    assert materialized(connection) == oracle(connection)
    # Update a dominated row into a winning position.
    connection.execute("UPDATE items SET b = 0, a = 0 WHERE a = 50")
    assert materialized(connection) == [(0, 0, "p")] == oracle(connection)
    connection.close()


def test_where_clause_filters_the_delta():
    connection = fresh_connection()
    query = "SELECT * FROM items WHERE a < 10 PREFERRING LOWEST(b)"
    connection.execute(f"CREATE PREFERENCE VIEW best AS {query}")
    before = materialized(connection)
    connection.execute("INSERT INTO items VALUES (99, 0, 'z')")  # fails WHERE
    assert materialized(connection) == before == oracle(connection, query)
    connection.execute("INSERT INTO items VALUES (3, 0, 'z')")  # passes WHERE
    assert materialized(connection) == oracle(connection, query)
    connection.close()


def test_duplicate_rows_are_kept_together():
    connection = fresh_connection()
    connection.execute(f"CREATE PREFERENCE VIEW best AS {VIEW_QUERY}")
    connection.execute("INSERT INTO items VALUES (0, 0, 'r'), (0, 0, 'r')")
    assert materialized(connection) == [(0, 0, "r"), (0, 0, "r")]
    assert materialized(connection) == oracle(connection)
    connection.execute("DELETE FROM items WHERE a = 0")
    assert materialized(connection) == oracle(connection)
    connection.close()


def test_named_preferences_are_inlined_and_protected():
    connection = fresh_connection()
    connection.execute("CREATE PREFERENCE low_a ON items AS LOWEST(a)")
    query = "SELECT * FROM items PREFERRING PREFERENCE low_a AND LOWEST(b)"
    connection.execute(f"CREATE PREFERENCE VIEW best AS {query}")
    connection.execute("INSERT INTO items VALUES (0, 0, 'r')")
    assert materialized(connection) == oracle(connection, query)
    with pytest.raises(CatalogError, match="used by materialized view"):
        connection.execute("DROP PREFERENCE low_a")
    connection.execute("DROP PREFERENCE VIEW best")
    connection.execute("DROP PREFERENCE low_a")  # now allowed
    connection.close()


def test_unmaintainable_view_recomputes_with_flag():
    connection = fresh_connection()
    query = (
        "SELECT * FROM items PREFERRING a AROUND 3 BUT ONLY DISTANCE(a) <= 2"
    )
    connection.execute(f"CREATE PREFERENCE VIEW best AS {query}")
    entry = connection.views()[0]
    assert not entry.maintainable
    assert "BUT ONLY" in entry.reason
    connection.execute("INSERT INTO items VALUES (3, 3, 'r')")
    assert materialized(connection) == oracle(connection, query)
    stats = connection.view_maintenance_stats()["best"]
    assert stats.get("recompute", 0) >= 2  # creation + DML
    assert "incremental" not in stats
    connection.close()


def test_recompute_mode_pins_full_refresh():
    connection = fresh_connection()
    connection.execute(f"CREATE PREFERENCE VIEW best AS {VIEW_QUERY}")
    connection.view_maintenance_mode = "recompute"
    connection.execute("INSERT INTO items VALUES (0, 0, 'r')")
    assert materialized(connection) == oracle(connection)
    stats = connection.view_maintenance_stats()["best"]
    assert "incremental" not in stats
    with pytest.raises(DriverError):
        connection.view_maintenance_mode = "sometimes"
    connection.close()


def test_refresh_preference_view_is_manual_recompute():
    connection = fresh_connection()
    connection.execute(f"CREATE PREFERENCE VIEW best AS {VIEW_QUERY}")
    # Mutate behind the driver's back (raw connection, no interception).
    connection.raw.execute("INSERT INTO items VALUES (0, 0, 'r')")
    assert materialized(connection) != oracle(connection)
    connection.refresh_preference_view("best")
    assert materialized(connection) == oracle(connection)
    connection.close()


# ----------------------------------------------------------------------
# DML interception: leading comments and CTE prologues (regression)


def test_scanner_resolves_plain_dml():
    target = _preference_dml_target("INSERT INTO items VALUES (1, 2, 'x')")
    assert (target.op, target.table, target.conflict) == ("insert", "items", False)
    target = _preference_dml_target("DELETE FROM items WHERE a = 1")
    assert (target.op, target.table) == ("delete", "items")
    assert target.select_sql == "SELECT * FROM items WHERE a = 1"
    target = _preference_dml_target("UPDATE items SET a = 1 WHERE b = 2")
    assert (target.op, target.table) == ("update", "items")


def test_scanner_sees_through_leading_comments():
    target = _preference_dml_target(
        "-- audit note\n/* multi\nline */ INSERT INTO items VALUES (1, 2, 'x')"
    )
    assert (target.op, target.table) == ("insert", "items")
    target = _preference_dml_target("/* c */ DELETE FROM items WHERE a = 1")
    assert target.op == "delete"
    assert target.select_sql == "/* c */ SELECT * FROM items WHERE a = 1"


def test_scanner_sees_through_cte_prologues():
    target = _preference_dml_target(
        "WITH doomed AS (SELECT a FROM items WHERE a > 5) "
        "DELETE FROM items WHERE a IN (SELECT a FROM doomed)"
    )
    assert (target.op, target.table) == ("delete", "items")
    assert target.select_sql.startswith("WITH doomed AS")
    assert "SELECT * FROM items WHERE a IN" in target.select_sql
    target = _preference_dml_target(
        "WITH extra(a, b, g) AS (VALUES (0, 0, 'r')) "
        "INSERT INTO items SELECT * FROM extra"
    )
    assert (target.op, target.table) == ("insert", "items")


def test_scanner_is_not_fooled_by_keywords_in_strings():
    target = _preference_dml_target(
        "WITH note AS (SELECT ' DELETE FROM decoy ' AS t) "
        "UPDATE items SET g = 'INSERT' WHERE a = 1"
    )
    assert (target.op, target.table) == ("update", "items")
    assert _preference_dml_target("WITH x AS (SELECT 1 AS c) SELECT * FROM x") is None
    assert _preference_dml_target("SELECT * FROM items") is None


def test_scanner_handles_quoted_and_conflict_forms():
    target = _preference_dml_target('INSERT OR REPLACE INTO "It""ems" VALUES (1)')
    assert (target.op, target.table, target.conflict) == ("insert", 'it"ems', True)
    target = _preference_dml_target("REPLACE INTO items VALUES (1, 2, 'x')")
    assert (target.op, target.conflict) == ("insert", True)
    target = _preference_dml_target("UPDATE OR IGNORE main.items SET a = 1")
    assert (target.op, target.table, target.conflict) == ("update", "items", False)
    target = _preference_dml_target("UPDATE OR REPLACE items SET a = 1")
    assert (target.op, target.conflict) == ("update", True)


def test_scanner_builds_targeted_update_pre_image():
    target = _preference_dml_target("UPDATE items SET a = ?, b = ? WHERE g = ?")
    assert target.select_sql == 'SELECT rowid, * FROM "items" WHERE g = ?'
    assert target.param_offset == 2
    target = _preference_dml_target("UPDATE items SET a = 1")
    assert target.select_sql == 'SELECT rowid, * FROM "items"'
    # Unsupported tails degrade to the full-snapshot capture (None).
    assert _preference_dml_target(
        "UPDATE items SET a = :v WHERE b = :w"
    ).select_sql is None
    assert _preference_dml_target(
        "UPDATE items SET a = 1 FROM extra WHERE items.b = extra.b"
    ).select_sql is None
    # WHERE inside the SET sub-select must not terminate the scan early.
    target = _preference_dml_target(
        "UPDATE items SET a = (SELECT MAX(b) FROM items WHERE g = 'p') WHERE b = 2"
    )
    assert target.select_sql == 'SELECT rowid, * FROM "items" WHERE b = 2'


def test_scanner_resolves_ddl_on_base_tables():
    target = _preference_dml_target("DROP TABLE IF EXISTS items")
    assert (target.op, target.table) == ("drop_table", "items")
    target = _preference_dml_target("ALTER TABLE items RENAME TO archive")
    assert (target.op, target.table) == ("alter_rename", "items")
    target = _preference_dml_target("ALTER TABLE items ADD COLUMN extra INTEGER")
    assert (target.op, target.table) == ("alter", "items")
    assert _preference_dml_target("DROP INDEX idx") is None


def test_drop_and_rename_of_base_table_are_refused_while_views_exist():
    connection = fresh_connection()
    connection.execute(f"CREATE PREFERENCE VIEW best AS {VIEW_QUERY}")
    with pytest.raises(CatalogError, match="drop them first"):
        connection.execute("DROP TABLE items")
    with pytest.raises(CatalogError, match="drop them first"):
        connection.execute("ALTER TABLE items RENAME TO archive")
    with pytest.raises(CatalogError, match="drop them first"):
        connection.execute("DROP TABLE best")  # the materialization itself
    connection.execute("DROP PREFERENCE VIEW best")
    connection.execute("DROP TABLE items")  # now allowed
    connection.close()


def test_rowid_changing_update_falls_back_to_recompute():
    connection = repro.connect(":memory:")
    connection.execute("CREATE TABLE keyed (pk INTEGER PRIMARY KEY, b INTEGER)")
    connection.execute("INSERT INTO keyed VALUES (1, 9), (2, 1)")
    connection.execute(
        "CREATE PREFERENCE VIEW best AS "
        "SELECT * FROM keyed PREFERRING LOWEST(pk) AND LOWEST(b)"
    )
    # Updating an INTEGER PRIMARY KEY moves the rowid; the targeted
    # capture must notice and recompute instead of guessing.
    connection.execute("UPDATE keyed SET pk = 99 WHERE pk = 1")
    assert materialized(connection) == sorted(
        connection.execute(
            "SELECT * FROM keyed PREFERRING LOWEST(pk) AND LOWEST(b)",
            algorithm="bnl",
        ).fetchall(),
        key=repr,
    )
    connection.close()


def test_parameterized_execution_never_reuses_a_view_plan():
    connection = fresh_connection()
    connection.execute(
        "CREATE PREFERENCE VIEW best AS "
        "SELECT * FROM items WHERE a <= 2 PREFERRING HIGHEST(a)"
    )
    query = "SELECT * FROM items WHERE a <= ? PREFERRING HIGHEST(a)"
    # The first binding makes the bound text equal the view definition;
    # a cached view scan must not leak into the second binding.
    first = connection.execute(query, (2,))
    assert first.plan.strategy != "view"
    assert sorted(first.fetchall()) == [(2, 8, "p")]
    second = connection.execute(query, (9,))
    assert sorted(second.fetchall()) == [(9, 1, "q")]
    connection.close()


def test_views_created_by_another_connection_are_maintained(tmp_path):
    database = str(tmp_path / "shared.db")
    writer = repro.connect(database)
    writer.execute("CREATE TABLE items (a INTEGER, b INTEGER, g TEXT)")
    writer.execute("INSERT INTO items VALUES (1, 9, 'p'), (9, 1, 'q')")
    writer.commit()
    # Warm the second connection's view index while no view exists yet.
    other = repro.connect(database)
    other.execute("INSERT INTO items VALUES (5, 5, 'p')")
    other.commit()
    writer.execute(f"CREATE PREFERENCE VIEW best AS {VIEW_QUERY}")
    writer.commit()
    # The second connection must notice the new view (PRAGMA
    # data_version changed) and maintain it on its own DML.
    other.execute("INSERT INTO items VALUES (0, 0, 'r')")
    other.commit()
    assert sorted(
        writer.raw.execute("SELECT * FROM best").fetchall()
    ) == [(0, 0, "r")]
    writer.close()
    other.close()


def test_comment_prefixed_dml_maintains_the_view():
    connection = fresh_connection()
    connection.execute(f"CREATE PREFERENCE VIEW best AS {VIEW_QUERY}")
    connection.execute("-- nightly load\nINSERT INTO items VALUES (0, 0, 'r')")
    assert materialized(connection) == [(0, 0, "r")] == oracle(connection)
    connection.execute("/* cleanup */ DELETE FROM items WHERE a = 0")
    assert materialized(connection) == oracle(connection)
    connection.close()


def test_cte_prefixed_dml_maintains_the_view():
    connection = fresh_connection()
    connection.execute(f"CREATE PREFERENCE VIEW best AS {VIEW_QUERY}")
    connection.execute(
        "WITH extra(a, b, g) AS (VALUES (0, 0, 'r')) "
        "INSERT INTO items SELECT * FROM extra"
    )
    assert materialized(connection) == [(0, 0, "r")] == oracle(connection)
    connection.execute(
        "WITH doomed AS (SELECT 0 AS a) "
        "DELETE FROM items WHERE a IN (SELECT a FROM doomed)"
    )
    assert materialized(connection) == oracle(connection)
    connection.close()


def test_insert_or_replace_falls_back_to_recompute():
    connection = fresh_connection()
    connection.execute(f"CREATE PREFERENCE VIEW best AS {VIEW_QUERY}")
    connection.execute("INSERT OR REPLACE INTO items VALUES (0, 0, 'r')")
    assert materialized(connection) == oracle(connection)
    stats = connection.view_maintenance_stats()["best"]
    assert stats.get("recompute", 0) >= 2  # creation + conflict-clause DML
    connection.close()


def test_executemany_insert_and_delete_maintenance():
    connection = fresh_connection()
    connection.execute(f"CREATE PREFERENCE VIEW best AS {VIEW_QUERY}")
    cursor = connection.cursor()
    cursor.executemany(
        "INSERT INTO items VALUES (?, ?, ?)", [(0, 3, "r"), (3, 0, "r")]
    )
    assert materialized(connection) == oracle(connection)
    stats = connection.view_maintenance_stats()["best"]
    assert stats.get("incremental") == 1
    cursor.executemany("DELETE FROM items WHERE a = ?", [(0,), (3,)])
    assert materialized(connection) == oracle(connection)
    connection.close()


def test_executescript_recomputes_every_view():
    connection = fresh_connection()
    connection.execute(f"CREATE PREFERENCE VIEW best AS {VIEW_QUERY}")
    connection.cursor().executescript(
        "INSERT INTO items VALUES (0, 0, 'r');"
        "DELETE FROM items WHERE a = 9;"
    )
    assert materialized(connection) == oracle(connection)
    connection.close()


def test_preference_insert_statement_maintains_the_view():
    connection = fresh_connection()
    connection.execute("CREATE TABLE picks (a INTEGER, b INTEGER, g TEXT)")
    connection.execute(
        "CREATE PREFERENCE VIEW best AS "
        "SELECT * FROM picks PREFERRING LOWEST(a)"
    )
    connection.execute(
        "INSERT INTO picks SELECT * FROM items PREFERRING LOWEST(a)"
    )
    assert materialized(connection) == sorted(
        connection.execute(
            "SELECT * FROM picks PREFERRING LOWEST(a)", algorithm="bnl"
        ).fetchall(),
        key=repr,
    )
    connection.close()


def test_rollback_reverts_base_and_materialization_together():
    connection = fresh_connection()
    connection.execute(f"CREATE PREFERENCE VIEW best AS {VIEW_QUERY}")
    connection.commit()
    before = materialized(connection)
    connection.execute("INSERT INTO items VALUES (0, 0, 'r')")
    assert materialized(connection) == [(0, 0, "r")]
    connection.rollback()
    assert materialized(connection) == before == oracle(connection)
    connection.close()


def test_without_rowid_table_falls_back_to_recompute():
    connection = repro.connect(":memory:")
    connection.execute(
        "CREATE TABLE ranked (a INTEGER PRIMARY KEY, b INTEGER) WITHOUT ROWID"
    )
    connection.execute("INSERT INTO ranked VALUES (1, 9), (9, 1)")
    connection.execute(
        "CREATE PREFERENCE VIEW best AS "
        "SELECT * FROM ranked PREFERRING LOWEST(a) AND LOWEST(b)"
    )
    connection.execute("INSERT INTO ranked VALUES (0, 0)")
    assert materialized(connection) == [(0, 0)]
    stats = connection.view_maintenance_stats()["best"]
    assert stats.get("recompute", 0) >= 2  # creation + failed rowid capture
    connection.close()


def test_schema_drift_recovers_via_recompute():
    connection = fresh_connection()
    connection.execute(f"CREATE PREFERENCE VIEW best AS {VIEW_QUERY}")
    # The intercepted ALTER recomputes immediately, rebuilding the
    # backing table with the new width; the following delta is then
    # maintained incrementally against the new schema.
    connection.execute("ALTER TABLE items ADD COLUMN extra INTEGER")
    connection.execute("INSERT INTO items VALUES (0, 0, 'r', 7)")
    assert materialized(connection) == [(0, 0, "r", 7)] == oracle(connection)
    connection.close()


def test_maintenance_events_are_bounded():
    connection = fresh_connection()
    connection.execute(f"CREATE PREFERENCE VIEW best AS {VIEW_QUERY}")
    for i in range(230):
        connection.execute(f"INSERT INTO items VALUES (0, 0, 'x{i}')")
    assert len(connection.view_maintainer.events) == 200
    connection.close()


# ----------------------------------------------------------------------
# Planning: answering from the view


def test_matching_query_is_answered_from_the_view():
    connection = fresh_connection()
    connection.execute(f"CREATE PREFERENCE VIEW best AS {VIEW_QUERY}")
    cursor = connection.execute(VIEW_QUERY)
    assert cursor.plan.strategy == "view"
    assert cursor.plan.view_name == "best"
    assert cursor.executed_sql == 'SELECT * FROM "best"'
    assert sorted(cursor.fetchall(), key=repr) == oracle(connection)
    connection.close()


def test_forced_strategies_bypass_the_view():
    connection = fresh_connection()
    connection.execute(f"CREATE PREFERENCE VIEW best AS {VIEW_QUERY}")
    for strategy in ("rewrite", "bnl", "sfs", "dnc", "parallel"):
        cursor = connection.execute(VIEW_QUERY, algorithm=strategy)
        assert cursor.plan.strategy == strategy
    connection.close()


def test_non_matching_and_parameterized_queries_miss_the_view():
    connection = fresh_connection()
    connection.execute(f"CREATE PREFERENCE VIEW best AS {VIEW_QUERY}")
    cursor = connection.execute("SELECT * FROM items PREFERRING LOWEST(a)")
    assert cursor.plan.strategy != "view"
    cursor = connection.execute(
        "SELECT * FROM items WHERE a < ? PREFERRING LOWEST(a) AND LOWEST(b)",
        (100,),
    )
    assert cursor.plan.strategy != "view"
    connection.close()


def test_view_answers_stay_fresh_across_dml():
    connection = fresh_connection()
    connection.execute(f"CREATE PREFERENCE VIEW best AS {VIEW_QUERY}")
    assert connection.execute(VIEW_QUERY).fetchall()  # prime the plan cache
    connection.execute("INSERT INTO items VALUES (0, 0, 'r')")
    cursor = connection.execute(VIEW_QUERY)
    assert cursor.plan.strategy == "view"
    assert sorted(cursor.fetchall(), key=repr) == [(0, 0, "r")]
    connection.close()


def test_dropping_the_view_restores_normal_planning():
    connection = fresh_connection()
    connection.execute(f"CREATE PREFERENCE VIEW best AS {VIEW_QUERY}")
    assert connection.execute(VIEW_QUERY).plan.strategy == "view"
    connection.execute("DROP PREFERENCE VIEW best")
    cursor = connection.execute(VIEW_QUERY)
    assert cursor.plan.strategy != "view"
    assert sorted(cursor.fetchall(), key=repr) == oracle(connection)
    connection.close()


def test_explain_preference_reports_view_hit_and_maintenance():
    connection = fresh_connection()
    connection.execute(f"CREATE PREFERENCE VIEW best AS {VIEW_QUERY}")
    rows = dict(
        connection.execute(f"EXPLAIN PREFERENCE {VIEW_QUERY}").fetchall()
    )
    assert rows["strategy"].startswith("view")
    assert rows["materialized view"] == "best"
    assert rows["maintenance"].startswith("incremental")

    connection.execute("DROP PREFERENCE VIEW best")
    unmaintainable = (
        "SELECT * FROM items PREFERRING a AROUND 3 BUT ONLY DISTANCE(a) <= 2"
    )
    connection.execute(f"CREATE PREFERENCE VIEW best AS {unmaintainable}")
    rows = dict(
        connection.execute(f"EXPLAIN PREFERENCE {unmaintainable}").fetchall()
    )
    assert rows["materialized view"] == "best"
    assert rows["maintenance"].startswith("full recompute")
    connection.close()


def test_explain_text_reports_the_view_scan():
    connection = fresh_connection()
    connection.execute(f"CREATE PREFERENCE VIEW best AS {VIEW_QUERY}")
    report = connection.explain(VIEW_QUERY)
    assert "view — materialized preference view scan" in report
    assert "best" in report
    connection.close()


def test_views_are_empty_on_a_fresh_database():
    connection = repro.connect(":memory:")
    # Listing views must not create catalog tables as a side effect.
    assert connection.views() == []
    assert connection.raw.execute(
        "SELECT name FROM sqlite_master WHERE name = 'prefsql_views'"
    ).fetchone() is None
    connection.close()


def test_plain_sql_reads_the_backing_table_directly():
    connection = fresh_connection()
    connection.execute(f"CREATE PREFERENCE VIEW best AS {VIEW_QUERY}")
    cursor = connection.execute("SELECT * FROM best")
    assert not cursor.was_rewritten
    assert sorted(cursor.fetchall(), key=repr) == oracle(connection)
    connection.close()
