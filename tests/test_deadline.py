"""Deadlines and cancellation: every strategy honors its timeout.

The tentpole acceptance test: a PREFERRING query forced onto each
execution strategy over an adversarial (anti-correlated) table must
terminate within a small multiple of its ``timeout_ms``, surface the
structured retryable :class:`~repro.errors.QueryTimeout`, and leave the
worker machinery reusable.
"""

import random
import time

import pytest

import repro
from repro.deadline import (
    CHECK_EVERY,
    Deadline,
    active_deadline,
    deadline_scope,
    run_with_deadline,
    sqlite_interrupt,
)
from repro.errors import QueryTimeout

#: Strategies the acceptance criteria require to honor deadlines.
STRATEGIES = ("rewrite", "bnl", "sfs", "dnc", "parallel")

ROWS = 30_000
TIMEOUT_MS = 600
#: The acceptance bound: observed wall clock stays within 2x the budget.
BOUND = 2 * TIMEOUT_MS / 1000.0

ADVERSARIAL = (
    "SELECT * FROM hard PREFERRING "
    "LOWEST(a) AND LOWEST(b) AND LOWEST(c) AND LOWEST(d)"
)


@pytest.fixture(scope="module")
def adversarial(tmp_path_factory):
    """Anti-correlated rows: huge skylines, so every strategy runs long.

    Each row's four attributes sum to a constant, so improving one
    dimension worsens another — almost nothing dominates anything and
    the skyline approaches the whole table.
    """
    path = str(tmp_path_factory.mktemp("deadline") / "hard.db")
    rng = random.Random(7)
    connection = repro.connect(path)
    connection.execute(
        "CREATE TABLE hard (id INTEGER, a REAL, b REAL, c REAL, d REAL)"
    )
    rows = []
    for i in range(ROWS):
        parts = [rng.random() + 1e-9 for _ in range(4)]
        total = sum(parts)
        rows.append((i,) + tuple(1000.0 * p / total for p in parts))
    connection.cursor().executemany(
        "INSERT INTO hard VALUES (?, ?, ?, ?, ?)", rows
    )
    connection.commit()
    connection.close()
    return path


class TestDeadlinePrimitives:
    def test_after_ms_and_remaining(self):
        deadline = Deadline.after_ms(50)
        assert 0 < deadline.remaining() <= 0.05
        assert not deadline.expired()
        deadline.check()  # not yet expired: no raise

    def test_nonpositive_timeout_is_an_immediate_timeout(self):
        with pytest.raises(QueryTimeout):
            Deadline.after_ms(0)

    def test_expired_check_raises_retryable(self):
        deadline = Deadline(time.monotonic() - 0.001)
        assert deadline.expired()
        with pytest.raises(QueryTimeout) as excinfo:
            deadline.check()
        assert excinfo.value.retryable is True
        assert excinfo.value.code == "timeout"

    def test_scope_publishes_and_restores(self):
        assert active_deadline() is None
        outer = Deadline.after_ms(10_000)
        inner = Deadline.after_ms(5_000)
        with deadline_scope(outer):
            assert active_deadline() is outer
            with deadline_scope(inner):
                assert active_deadline() is inner
            assert active_deadline() is outer
        assert active_deadline() is None

    def test_none_scope_is_a_no_op(self):
        with deadline_scope(None):
            assert active_deadline() is None

    def test_run_with_deadline_enters_scope(self):
        deadline = Deadline.after_ms(10_000)
        assert run_with_deadline(active_deadline, deadline) is deadline
        assert active_deadline() is None

    def test_check_every_is_a_power_of_two(self):
        assert CHECK_EVERY & (CHECK_EVERY - 1) == 0

    def test_sqlite_interrupt_aborts_a_host_scan(self, adversarial):
        connection = repro.connect(adversarial)
        deadline = Deadline.after_ms(100)
        started = time.monotonic()
        with pytest.raises(Exception) as excinfo:
            with sqlite_interrupt(connection.raw, deadline):
                # A cross join the host cannot finish in 100ms.
                connection.raw.execute(
                    "SELECT COUNT(*) FROM hard x, hard y WHERE x.a < y.a"
                ).fetchone()
        assert "interrupt" in str(excinfo.value).lower()
        assert time.monotonic() - started < 2.0
        # The connection survives the interrupt.
        assert connection.raw.execute("SELECT 1").fetchone() == (1,)
        connection.close()

    def test_sqlite_interrupt_already_expired(self, adversarial):
        connection = repro.connect(adversarial)
        with pytest.raises(QueryTimeout):
            with sqlite_interrupt(
                connection.raw, Deadline(time.monotonic() - 1.0)
            ):
                pass  # pragma: no cover - never reached
        connection.close()

    def test_timer_cancelled_after_fast_statement(self, adversarial):
        connection = repro.connect(adversarial)
        deadline = Deadline.after_ms(200)
        with sqlite_interrupt(connection.raw, deadline):
            connection.raw.execute("SELECT 1").fetchone()
        time.sleep(0.25)  # past expiry: a leaked timer would interrupt now
        cursor = connection.raw.execute("SELECT COUNT(*) FROM hard")
        assert cursor.fetchone() == (ROWS,)
        connection.close()


class TestStrategyTimeouts:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_strategy_honors_timeout(self, adversarial, strategy):
        connection = repro.connect(adversarial, max_workers=2)
        try:
            started = time.monotonic()
            with pytest.raises(QueryTimeout) as excinfo:
                connection.execute(
                    ADVERSARIAL, algorithm=strategy, timeout_ms=TIMEOUT_MS
                )
            elapsed = time.monotonic() - started
            assert excinfo.value.retryable is True
            assert excinfo.value.code == "timeout"
            assert elapsed < BOUND, (
                f"{strategy} took {elapsed:.2f}s against a "
                f"{TIMEOUT_MS}ms deadline"
            )
            # The connection (and its worker pools) stay usable.
            assert connection.execute(
                "SELECT COUNT(*) FROM hard"
            ).fetchall() == [(ROWS,)]
        finally:
            connection.close()

    def test_untimed_query_still_completes(self, adversarial):
        """No deadline: the exact pre-deadline code path, no timeout."""
        connection = repro.connect(adversarial)
        try:
            rows = connection.execute(
                "SELECT * FROM hard WHERE id < 200 PREFERRING "
                "LOWEST(a) AND LOWEST(b)"
            ).fetchall()
            assert rows
        finally:
            connection.close()

    def test_generous_timeout_returns_the_full_answer(self, adversarial):
        connection = repro.connect(adversarial)
        try:
            bounded = connection.execute(
                "SELECT * FROM hard WHERE id < 500 PREFERRING "
                "LOWEST(a) AND LOWEST(b)",
                timeout_ms=60_000,
            ).fetchall()
            plain = connection.execute(
                "SELECT * FROM hard WHERE id < 500 PREFERRING "
                "LOWEST(a) AND LOWEST(b)"
            ).fetchall()
            assert sorted(bounded) == sorted(plain)
        finally:
            connection.close()

    def test_deadline_scope_is_clean_after_timeout(self, adversarial):
        connection = repro.connect(adversarial)
        try:
            with pytest.raises(QueryTimeout):
                connection.execute(
                    ADVERSARIAL, algorithm="bnl", timeout_ms=150
                )
            assert active_deadline() is None
        finally:
            connection.close()
