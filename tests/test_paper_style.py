"""The section 3.2 exhibition script (CREATE VIEW Aux / anti-join)."""

import pytest

from repro.errors import RewriteError
from repro.rewrite.paper_style import paper_style_script
from repro.sql.parser import parse_statement


def script_for(query, **kwargs):
    return paper_style_script(parse_statement(query), **kwargs)


class TestScriptShape:
    def test_cars_script_matches_paper(self):
        create, select, drop = script_for(
            "SELECT Identifier, Make FROM Cars "
            "PREFERRING Make = 'Audi' AND Diesel = 'yes'",
            view_name="Aux",
        )
        assert create.startswith("CREATE VIEW Aux AS SELECT *, ")
        assert "CASE WHEN Make = 'Audi' THEN 0 ELSE 1 END AS Makelevel" in create
        assert "CASE WHEN Diesel = 'yes' THEN 0 ELSE 1 END AS Diesellevel" in create
        assert "A2.Makelevel <= A1.Makelevel" in select
        assert "A2.Diesellevel <= A1.Diesellevel" in select
        assert "A2.Makelevel < A1.Makelevel OR A2.Diesellevel < A1.Diesellevel" in select
        assert drop == "DROP VIEW Aux"

    def test_where_clause_carried_into_view(self):
        create, _select, _drop = script_for(
            "SELECT * FROM cars WHERE make = 'Opel' PREFERRING LOWEST(price)"
        )
        assert create.endswith("FROM cars WHERE make = 'Opel'")

    def test_single_base_preference(self):
        create, select, _drop = script_for(
            "SELECT * FROM cars PREFERRING LOWEST(price)"
        )
        assert "AS pricelevel" in create
        assert "A2.pricelevel < A1.pricelevel" in select

    def test_expression_operand_gets_generic_name(self):
        create, _s, _d = script_for(
            "SELECT * FROM cars PREFERRING LOWEST(price + tax)"
        )
        assert "AS level0" in create

    def test_duplicate_level_names_disambiguated(self):
        create, _s, _d = script_for(
            "SELECT * FROM cars PREFERRING price AROUND 10 AND HIGHEST(price)"
        )
        assert "pricelevel" in create
        assert "pricelevel1" in create


class TestScriptExecution:
    def test_script_result_matches_planner(self, fixture_connection):
        con = fixture_connection
        query = "SELECT Identifier FROM Cars PREFERRING Make = 'Audi' AND Diesel = 'yes'"
        planner_rows = con.execute(query).fetchall()

        create, select, drop = script_for(query, view_name="aux_test")
        raw = con.raw
        raw.execute(create)
        script_rows = raw.execute(select).fetchall()
        raw.execute(drop)
        assert sorted(script_rows) == sorted(planner_rows) == [(1,), (2,)]


class TestScriptRestrictions:
    def test_requires_preference_query(self):
        with pytest.raises(RewriteError):
            script_for("SELECT * FROM cars")

    def test_rejects_grouping(self):
        with pytest.raises(RewriteError):
            script_for("SELECT * FROM cars PREFERRING LOWEST(price) GROUPING make")

    def test_rejects_but_only(self):
        with pytest.raises(RewriteError):
            script_for(
                "SELECT * FROM cars PREFERRING price AROUND 5 "
                "BUT ONLY DISTANCE(price) <= 1"
            )

    def test_rejects_cascade(self):
        with pytest.raises(RewriteError):
            script_for(
                "SELECT * FROM cars PREFERRING LOWEST(price) CASCADE LOWEST(mileage)"
            )

    def test_rejects_multi_table(self):
        with pytest.raises(RewriteError):
            script_for("SELECT * FROM a, b PREFERRING LOWEST(a.x)")

    def test_rejects_explicit(self):
        with pytest.raises(RewriteError):
            script_for(
                "SELECT * FROM cars PREFERRING EXPLICIT(color, 'red' > 'blue')"
            )
