"""The preference algebra: laws preserve the induced order."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.model.algebra import describe, normalize
from repro.model.builder import build_preference
from repro.sql import ast
from repro.sql.parser import parse_preferring
from repro.sql.printer import to_sql


def norm(text: str) -> str:
    return to_sql(normalize(parse_preferring(text)))


class TestFlattening:
    def test_nested_pareto_flattens(self):
        assert norm("(LOWEST(a) AND LOWEST(b)) AND LOWEST(c)") == (
            "LOWEST(a) AND LOWEST(b) AND LOWEST(c)"
        )

    def test_nested_cascade_flattens(self):
        assert norm("(LOWEST(a) CASCADE LOWEST(b)) CASCADE LOWEST(c)") == (
            "LOWEST(a) CASCADE LOWEST(b) CASCADE LOWEST(c)"
        )

    def test_mixed_nesting_preserved(self):
        # Pareto inside cascade must NOT flatten across constructors.
        normalized = norm("(LOWEST(a) AND LOWEST(b)) CASCADE LOWEST(c)")
        assert normalized == "LOWEST(a) AND LOWEST(b) CASCADE LOWEST(c)"
        term = normalize(
            parse_preferring("(LOWEST(a) AND LOWEST(b)) CASCADE LOWEST(c)")
        )
        assert isinstance(term, ast.CascadePref)
        assert isinstance(term.parts[0], ast.ParetoPref)

    def test_deeply_nested_reaches_fixpoint(self):
        text = "((LOWEST(a) AND (LOWEST(b) AND LOWEST(c))) AND LOWEST(d))"
        assert norm(text) == "LOWEST(a) AND LOWEST(b) AND LOWEST(c) AND LOWEST(d)"


class TestIdempotence:
    def test_pareto_duplicates_collapse(self):
        assert norm("LOWEST(a) AND LOWEST(a)") == "LOWEST(a)"

    def test_pareto_distant_duplicates_collapse(self):
        assert norm("LOWEST(a) AND LOWEST(b) AND LOWEST(a)") == (
            "LOWEST(a) AND LOWEST(b)"
        )

    def test_cascade_adjacent_duplicates_collapse(self):
        assert norm("LOWEST(a) CASCADE LOWEST(a) CASCADE LOWEST(b)") == (
            "LOWEST(a) CASCADE LOWEST(b)"
        )

    def test_cascade_nonadjacent_duplicates_kept(self):
        # Conservative: only adjacent cascade layers are provably dead.
        assert norm("LOWEST(a) CASCADE LOWEST(b) CASCADE LOWEST(a)") == (
            "LOWEST(a) CASCADE LOWEST(b) CASCADE LOWEST(a)"
        )

    def test_collapse_to_single_constituent(self):
        assert norm("LOWEST(a) AND LOWEST(a) AND LOWEST(a)") == "LOWEST(a)"


class TestElseFusion:
    def test_chains_fuse(self):
        term = ast.ElsePref(
            parts=(
                ast.ElsePref(
                    parts=(
                        ast.PosPref(operand=ast.Column(name="c"), values=(ast.Literal(value="a"),)),
                        ast.PosPref(operand=ast.Column(name="c"), values=(ast.Literal(value="b"),)),
                    )
                ),
                ast.PosPref(operand=ast.Column(name="c"), values=(ast.Literal(value="d"),)),
            )
        )
        normalized = normalize(term)
        assert isinstance(normalized, ast.ElsePref)
        assert len(normalized.parts) == 3


class TestOrderPreservation:
    """Normalisation must not change the strict partial order."""

    TERMS = [
        "(LOWEST(a) AND LOWEST(b)) AND a AROUND 3",
        "LOWEST(a) AND LOWEST(a)",
        "(LOWEST(a) CASCADE LOWEST(b)) CASCADE LOWEST(a)",
        "LOWEST(a) CASCADE LOWEST(a)",
        "(b = 'red' ELSE b = 'blue') AND LOWEST(a)",
    ]

    @pytest.mark.parametrize("text", TERMS)
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_dominance_unchanged(self, text, data):
        original = build_preference(parse_preferring(text))
        simplified = build_preference(normalize(parse_preferring(text)))
        values = st.one_of(
            st.integers(-5, 5), st.sampled_from(["red", "blue", "x"]), st.none()
        )
        v_full = data.draw(st.tuples(*[values] * original.arity))
        w_full = data.draw(st.tuples(*[values] * original.arity))
        # Build a name -> value assignment so both preference shapes see
        # the same tuple even when deduplication changed the arity.
        def project(pref, source_pref, source):
            assignment = {}
            for expr, value in zip(source_pref.operands, source):
                assignment.setdefault(expr, value)
            return tuple(assignment[expr] for expr in pref.operands)

        v_simplified = project(simplified, original, v_full)
        w_simplified = project(simplified, original, w_full)
        # Duplicated operands in the original must carry the same value
        # for a fair comparison: rebuild the original vector through the
        # same assignment.
        v_original = project(original, original, v_full)
        w_original = project(original, original, w_full)
        assert original.is_better(v_original, w_original) == simplified.is_better(
            v_simplified, w_simplified
        )


class TestDescribe:
    def test_tree_rendering(self):
        term = parse_preferring(
            "(category = 'roadster' ELSE category <> 'passenger' AND "
            "price AROUND 40000) CASCADE LOWEST(mileage)"
        )
        text = describe(term)
        assert "CASCADE (ordered importance)" in text
        assert "PARETO (equal importance)" in text
        assert "LAYERED (ELSE chain)" in text
        assert "LOWEST(mileage)" in text

    def test_base_term_renders_as_sql(self):
        assert describe(parse_preferring("price AROUND 7")) == "price AROUND 7"


class TestDriverExplain:
    def test_explain_preference_query(self, fixture_connection):
        report = fixture_connection.explain(
            "SELECT * FROM oldtimer PREFERRING color = 'white' AND age AROUND 40"
        )
        assert "preference tree" in report
        assert "rewritten SQL" in report
        assert "NOT EXISTS" in report
        assert "host plan" in report

    def test_explain_pass_through(self, fixture_connection):
        report = fixture_connection.explain("SELECT * FROM oldtimer")
        assert "pass-through" in report

    def test_explain_catalog_statement(self, fixture_connection):
        report = fixture_connection.explain(
            "CREATE PREFERENCE p ON oldtimer AS LOWEST(age)"
        )
        assert "catalog" in report

    def test_explain_notes_simplification(self, fixture_connection):
        report = fixture_connection.explain(
            "SELECT * FROM oldtimer PREFERRING LOWEST(age) AND LOWEST(age)"
        )
        assert "simplified by algebra laws" in report

    def test_explain_does_not_execute(self, fixture_connection):
        before = len(fixture_connection.trace)
        fixture_connection.explain(
            "SELECT * FROM oldtimer PREFERRING LOWEST(age)"
        )
        assert len(fixture_connection.trace) == before
