"""Semantic optimization: constraint catalog + winnow-elimination rules.

Three layers of evidence that the semantic pass is sound:

* hypothesis property tests that the weak-order detector never claims a
  weak order the model preference contradicts (negative transitivity of
  the strict order on sampled vectors);
* per-rule precondition units — each rule fires exactly when its
  soundness preconditions hold, with the justifying constraints (and
  their provenance) reported in ``EXPLAIN PREFERENCE``;
* lifecycle regressions: observed constraints are data_version-scoped
  (DML that breaks one retires the rewrite), constraint DDL invalidates
  the plan cache, and materialized views over semantically-rewritable
  queries keep maintaining.
"""

import sqlite3

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

import repro
from repro.errors import CatalogError
from repro.model.builder import build_preference
from repro.pdl.catalog import PreferenceCatalog
from repro.plan.constraints import ConstraintCache
from repro.plan.semantic import _is_weak_order, semantic_rewrite
from repro.sql import ast
from repro.sql.parser import parse_preferring, parse_statement


# ----------------------------------------------------------------------
# Weak-order detection soundness (hypothesis)
#
# Whenever the detector claims a tree is a weak order, the model
# preference built from the same tree must behave like one on sampled
# operand vectors: the strict order is negatively transitive (hence
# incomparability is transitive — it is rank equality).

_WEAK_BASES = st.sampled_from(
    [
        "LOWEST(a)",
        "HIGHEST(b)",
        "a AROUND 3",
        "b BETWEEN 2, 5",
        "SCORE(a + b)",
        "c = 'x'",
        "c IN ('x', 'y')",
        "(c = 'x') ELSE (c = 'y')",
    ]
)

_NON_WEAK_BASES = st.sampled_from(
    ["EXPLICIT(c, 'x' > 'y', 'y' > 'z')"]
)


def _cascade(children):
    return st.builds(
        lambda left, right: f"({left}) CASCADE ({right})", children, children
    )


def _any_compose(children):
    return st.builds(
        lambda left, right, op: f"({left}) {op} ({right})",
        children,
        children,
        st.sampled_from(["AND", "CASCADE"]),
    )


weak_trees = st.recursive(_WEAK_BASES, _cascade, max_leaves=4)
mixed_trees = st.recursive(
    st.one_of(_WEAK_BASES, _NON_WEAK_BASES), _any_compose, max_leaves=4
)


def _vector(preference, data):
    values = []
    for index, operand in enumerate(preference.operands):
        text_operand = any(
            isinstance(node, ast.Column) and node.name.lower() == "c"
            for node in ast.walk_expr(operand)
        )
        if text_operand:
            values.append(
                data.draw(st.sampled_from(["x", "y", "z", "w"]), label=f"v{index}")
            )
        else:
            values.append(data.draw(st.integers(0, 5), label=f"v{index}"))
    return tuple(values)


@given(tree=mixed_trees, data=st.data())
@settings(max_examples=120, deadline=None)
def test_weak_order_claim_implies_negative_transitivity(tree, data):
    preference = build_preference(parse_preferring(tree))
    if not _is_weak_order(preference):
        return  # the detector may be conservative; only claims are checked
    x = _vector(preference, data)
    y = _vector(preference, data)
    z = _vector(preference, data)
    # strictness sanity on every claimed weak order
    assert not (preference.is_better(x, y) and preference.is_better(y, x))
    # negative transitivity: not(x<y) and not(y<z) => not(x<z)
    if not preference.is_better(x, y) and not preference.is_better(y, z):
        assert not preference.is_better(x, z), (tree, x, y, z)
    # incomparability is transitive in a weak order
    def incomparable(v, w):
        return not preference.is_better(v, w) and not preference.is_better(w, v)

    if incomparable(x, y) and incomparable(y, z):
        assert incomparable(x, z), (tree, x, y, z)


@given(tree=weak_trees)
@settings(max_examples=60, deadline=None)
def test_pure_cascades_of_weak_bases_are_detected(tree):
    assert _is_weak_order(build_preference(parse_preferring(tree)))


def test_pareto_and_explicit_are_not_weak_orders():
    for tree in (
        "LOWEST(a) AND HIGHEST(b)",
        "EXPLICIT(c, 'x' > 'y')",
        "(LOWEST(a) AND HIGHEST(b)) CASCADE LOWEST(a)",
    ):
        assert not _is_weak_order(build_preference(parse_preferring(tree)))


# ----------------------------------------------------------------------
# Per-rule precondition units (semantic_rewrite called directly)


def _analyzer(ddl, rows=(), declarations=()):
    """A ConstraintCache over a throwaway sqlite database."""
    raw = sqlite3.connect(":memory:")
    raw.execute(ddl)
    table = ddl.split()[2]
    for row in rows:
        placeholders = ", ".join("?" for _ in row)
        raw.execute(f"INSERT INTO {table} VALUES ({placeholders})", row)
    catalog = PreferenceCatalog(raw)
    for declaration in declarations:
        statement = parse_statement(declaration)
        assert isinstance(statement, ast.CreatePreferenceConstraint)
        catalog.create_constraint(statement)
    return ConstraintCache(
        raw, version=lambda: 0, declared=catalog.constraints
    )


def _rewrite(sql, constraints):
    select = parse_statement(sql)
    assert isinstance(select, ast.Select)
    return semantic_rewrite(select, select.preferring, constraints)


def test_keyed_selection_fires_on_declared_key():
    constraints = _analyzer(
        "CREATE TABLE t (k INTEGER, v INTEGER)",
        declarations=("CREATE PREFERENCE CONSTRAINT t_k ON t KEY (k)",),
    )
    outcome = _rewrite(
        "SELECT * FROM t WHERE k = 3 PREFERRING LOWEST(v)", constraints
    )
    assert outcome is not None
    assert outcome.rule == "winnow-eliminated (keyed selection)"
    assert outcome.select.preferring is None
    assert "key(k) [declared]" in outcome.constraints_used


def test_keyed_selection_fires_on_schema_primary_key():
    constraints = _analyzer(
        "CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER)"
    )
    outcome = _rewrite(
        "SELECT * FROM t WHERE k = 3 PREFERRING LOWEST(v)", constraints
    )
    assert outcome is not None
    assert outcome.rule == "winnow-eliminated (keyed selection)"
    assert "key(k) [schema]" in outcome.constraints_used


def test_keyed_selection_needs_the_whole_key_pinned():
    constraints = _analyzer(
        "CREATE TABLE t (k1 INTEGER, k2 INTEGER, v INTEGER)",
        rows=[(1, 1, 10), (1, 2, 20)],
        declarations=("CREATE PREFERENCE CONSTRAINT t_k ON t KEY (k1, k2)",),
    )
    outcome = _rewrite(
        "SELECT * FROM t WHERE k1 = 1 PREFERRING LOWEST(v)", constraints
    )
    assert outcome is None or "keyed selection" not in outcome.rule


def test_constant_preference_via_check_domain_needs_not_null():
    ddl = "CREATE TABLE t (v INTEGER CHECK (v = 7), w INTEGER)"
    nullable = _analyzer(ddl)
    fired = _analyzer(
        ddl,
        declarations=("CREATE PREFERENCE CONSTRAINT t_v ON t NOT NULL (v)",),
    )
    query = "SELECT * FROM t PREFERRING HIGHEST(v) GROUPING w"
    # a sqlite CHECK passes on NULL, so the singleton domain alone is no
    # proof of constancy (GROUPING blocks the single-pass fallback, and
    # the probe-free analyzer has no rows to observe NOT NULL from)
    assert _rewrite(query, nullable) is None
    outcome = _rewrite(query, fired)
    assert outcome is not None
    assert outcome.rule == "winnow-eliminated (constant preference)"
    assert "domain(v) [schema]" in outcome.constraints_used
    assert "not null(v) [declared]" in outcome.constraints_used


def test_dimension_reduction_drops_pinned_dimension():
    # two v values under u = 1, so the observed FD u -> v cannot fire
    # and constancy stays limited to the pinned dimension
    constraints = _analyzer(
        "CREATE TABLE t (u INTEGER, v TEXT, w INTEGER)",
        rows=[(1, "x", 5), (1, "y", 6)],
    )
    outcome = _rewrite(
        "SELECT * FROM t WHERE u = 1 "
        "PREFERRING LOWEST(u) AND EXPLICIT(v, 'x' > 'y') GROUPING w",
        constraints,
    )
    assert outcome is not None
    assert outcome.rule == "dimension reduction (1 of 2 dimensions constant)"
    assert outcome.single_pass_sql is None
    reduced = outcome.select.preferring
    assert isinstance(reduced, ast.ExplicitPref)


def test_single_pass_requires_not_null_proof():
    constraints = _analyzer(
        "CREATE TABLE t (v INTEGER)", rows=[(1,), (None,)]
    )
    assert _rewrite("SELECT * FROM t PREFERRING LOWEST(v)", constraints) is None


def test_single_pass_requires_numeric_proof():
    constraints = _analyzer(
        "CREATE TABLE t (v INTEGER NOT NULL)", rows=[(1,), ("abc",)]
    )
    assert _rewrite("SELECT * FROM t PREFERRING LOWEST(v)", constraints) is None


def test_single_pass_blocked_by_but_only_and_quality_calls():
    constraints = _analyzer(
        "CREATE TABLE t (v INTEGER NOT NULL)", rows=[(1,), (2,)]
    )
    assert (
        _rewrite(
            "SELECT * FROM t PREFERRING v AROUND 1 BUT ONLY DISTANCE(v) <= 1",
            constraints,
        )
        is None
    )
    assert (
        _rewrite(
            "SELECT *, DISTANCE(v) FROM t PREFERRING v AROUND 1", constraints
        )
        is None
    )


def test_single_pass_blocked_by_parameters():
    constraints = _analyzer(
        "CREATE TABLE t (v INTEGER NOT NULL)", rows=[(1,), (2,)]
    )
    assert (
        _rewrite(
            "SELECT * FROM t WHERE v > ? PREFERRING LOWEST(v)", constraints
        )
        is None
    )


def test_single_pass_fires_with_observed_proofs():
    constraints = _analyzer("CREATE TABLE t (v INTEGER)", rows=[(3,), (1,)])
    outcome = _rewrite("SELECT * FROM t PREFERRING LOWEST(v)", constraints)
    assert outcome is not None
    assert outcome.rule.startswith("weak-order single pass")
    assert "not null(v) [observed]" in outcome.constraints_used
    assert "numeric(v) [observed]" in outcome.constraints_used


def test_contains_preference_never_takes_the_single_pass():
    constraints = _analyzer(
        "CREATE TABLE t (v TEXT NOT NULL)", rows=[("sauna pool",)]
    )
    assert (
        _rewrite(
            "SELECT * FROM t PREFERRING v CONTAINS 'sauna'", constraints
        )
        is None
    )


# ----------------------------------------------------------------------
# Driver integration: EXPLAIN rows, provenance, lifecycle


@pytest.fixture
def keyed_connection():
    connection = repro.connect(":memory:")
    connection.execute(
        "CREATE TABLE car (id INTEGER PRIMARY KEY, "
        "price INTEGER NOT NULL, age INTEGER NOT NULL, color TEXT)"
    )
    for i in range(30):
        connection.execute(
            "INSERT INTO car VALUES (?, ?, ?, ?)",
            (i, 900 + (i * 37) % 400, i % 9, ("red", "white", "blue")[i % 3]),
        )
    yield connection
    connection.close()


def _explain(connection, query):
    return dict(
        connection.execute("EXPLAIN PREFERENCE " + query).fetchall()
    )


def test_explain_reports_semantic_rows(keyed_connection):
    query = "SELECT id, price FROM car PREFERRING LOWEST(price) CASCADE LOWEST(age)"
    report = _explain(keyed_connection, query)
    assert report["semantic rewrite"].startswith("weak-order single pass")
    assert "not null(price) [schema]" in report["constraints used"]
    winners = sorted(keyed_connection.execute(query).fetchall())
    oracle = sorted(
        keyed_connection.execute(query, algorithm="bnl").fetchall()
    )
    assert winners == oracle


def test_explain_reports_keyed_elimination(keyed_connection):
    query = (
        "SELECT id, price FROM car WHERE id = 4 "
        "PREFERRING LOWEST(price) AND HIGHEST(age)"
    )
    report = _explain(keyed_connection, query)
    assert report["semantic rewrite"] == "winnow-eliminated (keyed selection)"
    assert report["constraints used"] == "key(id) [schema]"
    winners = keyed_connection.execute(query).fetchall()
    oracle = keyed_connection.execute(query, algorithm="bnl").fetchall()
    assert sorted(winners) == sorted(oracle)


def test_forced_strategies_bypass_semantic_rewrite(keyed_connection):
    query = "SELECT id FROM car PREFERRING LOWEST(price)"
    for strategy in ("rewrite", "bnl", "sfs", "dnc", "parallel"):
        cursor = keyed_connection.execute(query, algorithm=strategy)
        assert cursor.plan is not None
        assert cursor.plan.semantic_rule is None, strategy


def test_constraint_ddl_invalidates_plan_cache():
    connection = repro.connect(":memory:")
    try:
        connection.execute("CREATE TABLE t (k INTEGER, v INTEGER)")
        for i in range(6):
            connection.execute("INSERT INTO t VALUES (?, ?)", (i, i * 10))
        query = "SELECT * FROM t WHERE k = 1 PREFERRING LOWEST(v)"
        before = connection.execute(query).plan
        assert before is not None
        # without a declared key, constancy is only provable through the
        # observed FD probe (k happens to be unique in the data)
        assert before.semantic_rule == "winnow-eliminated (constant preference)"
        connection.execute("CREATE PREFERENCE CONSTRAINT t_k ON t KEY (k)")
        after = connection.execute(query).plan
        assert after is not None
        assert after.semantic_rule == "winnow-eliminated (keyed selection)"
        assert "key(k) [declared]" in after.semantic_constraints
        connection.execute("DROP PREFERENCE CONSTRAINT t_k")
        reverted = connection.execute(query).plan
        assert reverted is not None
        assert (
            reverted.semantic_rule == "winnow-eliminated (constant preference)"
        )
    finally:
        connection.close()


def test_duplicate_and_unknown_constraints_raise():
    connection = repro.connect(":memory:")
    try:
        connection.execute("CREATE TABLE t (k INTEGER)")
        connection.execute("CREATE PREFERENCE CONSTRAINT t_k ON t KEY (k)")
        with pytest.raises(CatalogError):
            connection.execute("CREATE PREFERENCE CONSTRAINT t_k ON t KEY (k)")
        with pytest.raises(CatalogError):
            connection.execute("DROP PREFERENCE CONSTRAINT missing")
    finally:
        connection.close()


def test_dml_retires_observed_fd_rewrite():
    """INSERT that breaks an observed FD must retire the rewrite.

    Satellite regression for data_version scoping: the first plan leans
    on the observed ``k -> v`` dependency; after an INSERT that breaks
    it, the very next query must re-probe and stop using it.
    """
    connection = repro.connect(":memory:")
    try:
        connection.execute("CREATE TABLE t (k INTEGER, v INTEGER)")
        connection.execute("INSERT INTO t VALUES (1, 10)")
        connection.execute("INSERT INTO t VALUES (2, 20)")
        query = "SELECT * FROM t WHERE k = 1 PREFERRING LOWEST(v) AND HIGHEST(k)"
        first = connection.execute(query).plan
        assert first is not None
        assert first.semantic_rule == "winnow-eliminated (constant preference)"
        assert any(
            label.startswith("fd(k -> v)")
            for label in first.semantic_constraints
        )
        probes_before = connection.constraints.probe_count

        connection.execute("INSERT INTO t VALUES (1, 99)")  # breaks k -> v
        second = connection.execute(query).plan
        assert second is not None
        assert second.semantic_rule != "winnow-eliminated (constant preference)"
        assert not any(
            label.startswith("fd(") for label in second.semantic_constraints
        )
        assert connection.constraints.probe_count > probes_before
        winners = sorted(connection.execute(query).fetchall())
        oracle = sorted(connection.execute(query, algorithm="bnl").fetchall())
        assert winners == oracle == [(1, 10)]
    finally:
        connection.close()


def test_semantic_plans_replan_instead_of_rebinding():
    connection = repro.connect(":memory:")
    try:
        connection.execute(
            "CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER NOT NULL)"
        )
        for i in range(5):
            connection.execute("INSERT INTO t VALUES (?, ?)", (i, 50 - i))
        query = "SELECT * FROM t WHERE k = ? PREFERRING LOWEST(v)"
        for key in (1, 3, 1):
            rows = connection.execute(query, (key,)).fetchall()
            oracle = connection.execute(query, (key,), algorithm="bnl").fetchall()
            assert sorted(rows) == sorted(oracle), key
    finally:
        connection.close()


def test_view_over_semantic_query_keeps_maintaining():
    connection = repro.connect(":memory:")
    try:
        connection.execute(
            "CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER NOT NULL)"
        )
        for i in range(8):
            connection.execute("INSERT INTO t VALUES (?, ?)", (i, (i * 5) % 13))
        view_query = "SELECT * FROM t PREFERRING LOWEST(v) CASCADE HIGHEST(k)"
        assert _explain(connection, view_query)["semantic rewrite"].startswith(
            "weak-order single pass"
        )
        connection.execute(f"CREATE PREFERENCE VIEW best AS {view_query}")
        for statement in (
            "INSERT INTO t VALUES (100, 0)",
            "DELETE FROM t WHERE k = 100",
            "UPDATE t SET v = 1 WHERE k = 3",
        ):
            connection.execute(statement)
            materialized = sorted(
                connection.raw.execute("SELECT * FROM best").fetchall()
            )
            fresh = sorted(
                connection.execute(view_query, algorithm="bnl").fetchall()
            )
            assert materialized == fresh, statement
    finally:
        connection.close()
