"""The bench CLI (python -m repro.bench)."""

import pytest

from repro.bench.__main__ import main


def test_single_experiment(capsys):
    assert main(["e2", "--quick"]) == 0
    output = capsys.readouterr().out
    assert "E2" in output
    assert "exact match: True" in output


def test_e3_prints_script(capsys):
    assert main(["e3", "--quick"]) == 0
    output = capsys.readouterr().out
    assert "CREATE VIEW Aux" in output
    assert "NOT EXISTS" in output


def test_unknown_experiment_raises():
    with pytest.raises(KeyError):
        main(["e99"])
