"""Property-based tests: every preference is a strict partial order.

The paper's model requires irreflexivity, transitivity and asymmetry
(section 2.1) and claims closure under Pareto accumulation and cascading
(section 2.2.2).  Hypothesis builds random base preferences, composes them
randomly, and checks the laws over random operand vectors — including NULLs
and out-of-vocabulary values.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.model.categorical import ExplicitPreference, neg, pos
from repro.model.composite import ParetoPreference, PrioritizationPreference
from repro.model.numeric import (
    AroundPreference,
    BetweenPreference,
    HighestPreference,
    LowestPreference,
)
from repro.model.properties import check_strict_partial_order, spo_violations
from repro.model.text import ContainsPreference
from repro.sql import ast

COLUMNS = [ast.Column(name=f"c{i}") for i in range(8)]

_values = st.one_of(
    st.none(),
    st.integers(min_value=-50, max_value=50),
    st.sampled_from(["red", "blue", "green", "black", "white"]),
)


@st.composite
def base_preferences(draw):
    column = draw(st.sampled_from(COLUMNS))
    kind = draw(
        st.sampled_from(
            ["around", "between", "lowest", "highest", "pos", "neg", "explicit", "contains"]
        )
    )
    if kind == "around":
        return AroundPreference(column, draw(st.integers(-20, 20)))
    if kind == "between":
        low = draw(st.integers(-20, 20))
        high = draw(st.integers(low, 25))
        return BetweenPreference(column, low, high)
    if kind == "lowest":
        return LowestPreference(column)
    if kind == "highest":
        return HighestPreference(column)
    if kind == "pos":
        values = draw(
            st.sets(st.sampled_from(["red", "blue", "green"]), min_size=1, max_size=3)
        )
        return pos(column, values)
    if kind == "neg":
        values = draw(
            st.sets(st.sampled_from(["red", "blue", "green"]), min_size=1, max_size=3)
        )
        return neg(column, values)
    if kind == "contains":
        return ContainsPreference(column, "red green blue")
    # Explicit: random edges over a fixed topological order — always a DAG.
    vocabulary = ["red", "blue", "green", "black"]
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3)).filter(
                lambda pair: pair[0] < pair[1]
            ),
            min_size=1,
            max_size=5,
            unique=True,
        )
    )
    pairs = [(vocabulary[a], vocabulary[b]) for a, b in edges]
    return ExplicitPreference(column, pairs)


@st.composite
def preferences(draw, max_depth=2):
    if max_depth == 0 or draw(st.booleans()):
        return draw(base_preferences())
    constructor = draw(st.sampled_from([ParetoPreference, PrioritizationPreference]))
    count = draw(st.integers(2, 3))
    parts = [draw(preferences(max_depth=max_depth - 1)) for _ in range(count)]
    return constructor(parts)


def vectors_for(preference, draw_values):
    return tuple(draw_values for _ in range(preference.arity))


@given(preference=base_preferences(), data=st.data())
@settings(max_examples=150, deadline=None)
def test_base_preferences_are_strict_partial_orders(preference, data):
    vectors = data.draw(
        st.lists(
            st.tuples(*[_values] * preference.arity), min_size=2, max_size=7
        )
    )
    assert spo_violations(preference, vectors) == []


@given(preference=preferences(), data=st.data())
@settings(max_examples=150, deadline=None)
def test_composed_preferences_are_strict_partial_orders(preference, data):
    vectors = data.draw(
        st.lists(
            st.tuples(*[_values] * preference.arity), min_size=2, max_size=6
        )
    )
    assert spo_violations(preference, vectors) == []


@given(preference=preferences(), data=st.data())
@settings(max_examples=100, deadline=None)
def test_better_or_equal_is_consistent(preference, data):
    vector_strategy = st.tuples(*[_values] * preference.arity)
    v = data.draw(vector_strategy)
    w = data.draw(vector_strategy)
    boe = preference.is_better_or_equal(v, w)
    assert boe == (preference.is_better(v, w) or preference.is_equal(v, w))


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_pareto_dominance_implies_componentwise(data):
    p1 = data.draw(base_preferences())
    p2 = data.draw(base_preferences())
    pareto = ParetoPreference([p1, p2])
    vector_strategy = st.tuples(*[_values] * pareto.arity)
    v = data.draw(vector_strategy)
    w = data.draw(vector_strategy)
    if pareto.is_better(v, w):
        split_v = pareto.component_vectors(v)
        split_w = pareto.component_vectors(w)
        for part, sub_v, sub_w in zip(pareto.children(), split_v, split_w):
            assert part.is_better_or_equal(sub_v, sub_w)
        assert any(
            part.is_better(sub_v, sub_w)
            for part, sub_v, sub_w in zip(pareto.children(), split_v, split_w)
        )


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_cascade_respects_first_preference(data):
    p1 = data.draw(base_preferences())
    p2 = data.draw(base_preferences())
    cascade = PrioritizationPreference([p1, p2])
    vector_strategy = st.tuples(*[_values] * cascade.arity)
    v = data.draw(vector_strategy)
    w = data.draw(vector_strategy)
    split_v = cascade.component_vectors(v)
    split_w = cascade.component_vectors(w)
    if p1.is_better(split_v[0], split_w[0]):
        assert cascade.is_better(v, w)
    if cascade.is_better(v, w) and not p1.is_better(split_v[0], split_w[0]):
        # fell through: first components must be substitutable
        assert p1.is_equal(split_v[0], split_w[0])


def test_check_raises_on_violation():
    import pytest

    from repro.errors import NotAStrictPartialOrder
    from repro.model.preference import Preference

    class Broken(Preference):
        kind = "BROKEN"

        @property
        def operands(self):
            return (COLUMNS[0],)

        def is_better(self, v, w):
            return True  # better than itself: irreflexivity violated

        def is_equal(self, v, w):
            return v == w

    with pytest.raises(NotAStrictPartialOrder):
        check_strict_partial_order(Broken(), [(1,), (2,)])


def test_check_passes_on_lawful_preference():
    check_strict_partial_order(
        LowestPreference(COLUMNS[0]), [(1,), (2,), (None,), (2,)]
    )
