"""The columnar rank-vector core against the nested-loop oracle.

Property suite for the tentpole invariant: every columnar execution path
— the serial tuple kernels (bnl/sfs/dnc flavours, python and vectorized),
the partitioned executor, and the SQL rank pushdown through the driver —
returns *index-identical* winners to the paper's quadratic nested-loop
selection method, on random Pareto/CASCADE/ELSE trees over values that
include SQL NULL and (via custom rank implementations) NaN ranks,
under GROUPING and BUT ONLY.
"""

import math

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

import repro
from repro.engine import columns as columns_module
from repro.engine.algorithms import (
    block_nested_loops,
    divide_and_conquer,
    nested_loop_maximal,
    sort_filter_skyline,
)
from repro.engine.bmo import bmo_filter
from repro.engine.columns import (
    RankColumns,
    columnar_skyline,
    compute_rank_columns,
    rank_columns_from_values,
    rank_shape,
)
from repro.model.builder import build_preference
from repro.model.composite import ParetoPreference, PrioritizationPreference
from repro.model.preference import WeakOrderBase
from repro.plan import STRATEGIES
from repro.sql import ast
from repro.sql.parser import parse_preferring

# ----------------------------------------------------------------------
# Tree and data generators (NULL-bearing numeric + categorical columns)

COLUMNS = ("a", "b", "c", "g", "t")

rows_strategy = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(-5, 12)),  # a (NULL-bearing)
        st.one_of(st.none(), st.integers(0, 9)),  # b (NULL-bearing)
        st.sampled_from(["x", "y", "z", None]),  # c (categorical)
        st.sampled_from(["p", "q", None]),  # g (GROUPING key)
        st.integers(0, 6),  # t (BUT ONLY anchor)
    ),
    min_size=0,
    max_size=24,
)

_CATEGORICAL = st.sampled_from(
    ["c = 'x'", "c <> 'y'", "c IN ('x', 'y')", "c NOT IN ('z')"]
)

_ELSE_CHAINS = st.recursive(
    _CATEGORICAL,
    lambda children: st.builds(
        lambda left, right: f"({left}) ELSE ({right})", children, children
    ),
    max_leaves=3,
)

_BASES = st.one_of(
    st.sampled_from(
        [
            "LOWEST(a)",
            "HIGHEST(b)",
            "a AROUND 3",
            "b BETWEEN 2, 7",
            "SCORE(a)",
            "c CONTAINS 'x'",
        ]
    ),
    _CATEGORICAL,
    _ELSE_CHAINS,
)

trees_strategy = st.recursive(
    _BASES,
    lambda children: st.builds(
        lambda left, right, op: f"({left}) {op} ({right})",
        children,
        children,
        st.sampled_from(["AND", "CASCADE"]),
    ),
    max_leaves=4,
)


def _operand_vectors(preference, rows):
    positions = {name: i for i, name in enumerate(COLUMNS)}
    slots = [positions[op.name.lower()] for op in preference.operands]
    return [tuple(row[i] for i in slots) for row in rows]


def _grouped_oracle(preference, vectors, keys):
    groups = {}
    for i in range(len(vectors)):
        groups.setdefault(keys[i] if keys else None, []).append(i)
    return sorted(
        members[p]
        for members in groups.values()
        for p in nested_loop_maximal(
            preference, [vectors[i] for i in members]
        )
    )


# ----------------------------------------------------------------------
# Kernel-level properties


@given(rows=rows_strategy, tree=trees_strategy)
@settings(max_examples=80, deadline=None)
def test_columnar_kernels_match_nested_loop_oracle(rows, tree):
    preference = build_preference(parse_preferring(tree))
    vectors = _operand_vectors(preference, rows)
    oracle = sorted(nested_loop_maximal(preference, vectors))
    for algorithm in (block_nested_loops, sort_filter_skyline, divide_and_conquer):
        assert algorithm(preference, vectors) == oracle, (tree, algorithm)


@given(rows=rows_strategy, tree=trees_strategy, data=st.data())
@settings(max_examples=60, deadline=None)
def test_grouped_columnar_matches_oracle(rows, tree, data):
    preference = build_preference(parse_preferring(tree))
    vectors = _operand_vectors(preference, rows)
    keys = [row[3] for row in rows]
    oracle = _grouped_oracle(preference, vectors, keys)
    algorithm = data.draw(st.sampled_from(["bnl", "sfs", "dnc", "parallel"]))
    assert (
        bmo_filter(preference, vectors, group_keys=keys, algorithm=algorithm)
        == oracle
    ), (tree, algorithm)


@given(rows=rows_strategy, tree=trees_strategy)
@settings(max_examples=40, deadline=None)
def test_vectorized_kernel_matches_python_kernel(rows, tree):
    """Force both kernel implementations across the numpy threshold."""
    preference = build_preference(parse_preferring(tree))
    vectors = _operand_vectors(preference, rows)
    ranks = compute_rank_columns(preference, vectors)
    if ranks is None or ranks.mode is None:
        return  # closure trees are covered by the oracle tests above
    indices = list(range(len(ranks)))
    python_winners = sorted(
        columns_module.rank_row_skyline(ranks.rows, ranks.mode, indices)
    )
    original = columns_module._NUMPY_MIN_ROWS
    try:
        columns_module._NUMPY_MIN_ROWS = 0
        vectorized = sorted(columnar_skyline(ranks, indices))
    finally:
        columns_module._NUMPY_MIN_ROWS = original
    assert vectorized == python_winners, tree


@given(rows=rows_strategy, tree=trees_strategy, data=st.data())
@settings(max_examples=40, deadline=None)
def test_adopted_rank_values_match_computed(rows, tree, data):
    """rank_columns_from_values over Python-computed cells is identical."""
    preference = build_preference(parse_preferring(tree))
    vectors = _operand_vectors(preference, rows)
    computed = compute_rank_columns(preference, vectors)
    if computed is None:
        return
    adopted = rank_columns_from_values(
        preference, [list(column) for column in computed.columns]
    )
    assert adopted is not None
    assert adopted.rows == computed.rows
    flavor = data.draw(st.sampled_from(["bnl", "sfs", "dnc"]))
    assert sorted(
        bmo_filter(preference, None, algorithm=flavor, ranks=adopted)
    ) == sorted(nested_loop_maximal(preference, vectors)), tree


def test_non_numeric_rank_cells_are_rejected():
    preference = build_preference(parse_preferring("LOWEST(a) AND LOWEST(b)"))
    assert (
        rank_columns_from_values(preference, [[1.0, "text"], [2.0, 3.0]])
        is None
    )
    assert (
        rank_columns_from_values(preference, [[1.0, None], [2.0, 3.0]]) is None
    )
    assert rank_columns_from_values(preference, [[1.0]]) is None  # width


# ----------------------------------------------------------------------
# NaN ranks (only custom rank implementations can produce them)


class NanLowest(WeakOrderBase):
    kind = "NAN-LOWEST"

    def rank(self, value):
        if value is None:
            return float("nan")
        return float(value)


nan_vectors_strategy = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(0, 6)),
        st.one_of(st.none(), st.integers(0, 6)),
    ),
    min_size=0,
    max_size=18,
)


@given(vectors=nan_vectors_strategy, data=st.data())
@settings(max_examples=60, deadline=None)
def test_nan_ranks_match_oracle_on_flat_trees(vectors, data):
    composite = data.draw(
        st.sampled_from([ParetoPreference, PrioritizationPreference])
    )
    preference = composite(
        [NanLowest(ast.Column(name=name)) for name in ("a", "b")]
    )
    oracle = sorted(nested_loop_maximal(preference, vectors))
    for algorithm in (block_nested_loops, sort_filter_skyline, divide_and_conquer):
        assert algorithm(preference, vectors) == oracle, composite.kind
    ranks = compute_rank_columns(preference, vectors)
    if vectors:
        assert ranks.has_nan == any(
            value != value for row in ranks.rows for value in row
        )
        # The vectorized path must agree even when forced on.
        original = columns_module._NUMPY_MIN_ROWS
        try:
            columns_module._NUMPY_MIN_ROWS = 0
            assert sorted(columnar_skyline(ranks, range(len(ranks)))) == oracle
        finally:
            columns_module._NUMPY_MIN_ROWS = original


def test_blob_and_decimal_operands_take_the_scalar_path():
    # np.asarray would happily parse b'2.5' (or a Decimal) as a number,
    # but coerce_number ranks non-(int/float/bool/str) values as
    # NULL_RANK — the vectorized rank path must refuse such columns so
    # winner sets match Preference.is_better exactly.
    from decimal import Decimal

    preference = build_preference(parse_preferring("LOWEST(a)"))
    for vectors in (
        [(3.0,), (b"2.5",)],
        [(3.0,), (Decimal("2.5"),)],
    ):
        oracle = sorted(nested_loop_maximal(preference, vectors))
        assert block_nested_loops(preference, vectors) == oracle, vectors
        ranks = compute_rank_columns(preference, vectors)
        assert ranks.rows[1][0] == pytest.approx(1.0e15), vectors


def test_mismatched_adopted_columns_are_refused():
    # Rank columns built for preference P must not answer a SELECT whose
    # PREFERRING clause is Q — the engine refuses and recomputes.
    p = build_preference(parse_preferring("LOWEST(a) AND LOWEST(b)"))
    rows = [(1, 9), (2, 8), (3, 7)]
    ranks = compute_rank_columns(p, rows)
    engine = repro.PreferenceEngine(
        {"items": repro.Relation(columns=("a", "b"), rows=rows)},
        algorithm="sfs",
        rank_columns=ranks,
    )
    q = "SELECT * FROM items PREFERRING HIGHEST(a) AND LOWEST(b)"
    assert sorted(engine.execute(q).rows) == [(3, 7)]  # Q's winner, not P's


def test_nan_operands_rank_as_null_rank_not_nan():
    # A NaN *operand* is unparseable-as-number and ranks to NULL_RANK on
    # built-in types — the vectorized rank path must not leak raw NaN.
    preference = build_preference(parse_preferring("LOWEST(a) AND LOWEST(b)"))
    vectors = [(float("nan"), 1), (2.0, 0), (3.0, 2)]
    ranks = compute_rank_columns(preference, vectors)
    assert not ranks.has_nan
    assert ranks.rows[0][0] == pytest.approx(1.0e15)
    assert sorted(block_nested_loops(preference, vectors)) == sorted(
        nested_loop_maximal(preference, vectors)
    )


# ----------------------------------------------------------------------
# Associativity flattening

def test_same_constructor_nesting_flattens():
    preference = build_preference(
        parse_preferring("(LOWEST(a) AND LOWEST(b)) AND HIGHEST(c)")
    )
    shape = rank_shape(preference)
    assert shape.mode == "pareto" and len(shape.leaves) == 3


def test_mixed_nesting_keeps_structure():
    preference = build_preference(
        parse_preferring("(LOWEST(a) AND LOWEST(b)) CASCADE HIGHEST(c)")
    )
    shape = rank_shape(preference)
    assert shape.mode is None and len(shape.leaves) == 3


@given(rows=rows_strategy)
@settings(max_examples=40, deadline=None)
def test_flattened_nesting_preserves_dominance(rows):
    nested = build_preference(
        parse_preferring("(LOWEST(a) AND HIGHEST(b)) AND a AROUND 3")
    )
    vectors = _operand_vectors(nested, rows)
    assert sorted(nested_loop_maximal(nested, vectors)) == block_nested_loops(
        nested, vectors
    )


# ----------------------------------------------------------------------
# SQL rank pushdown through the driver


def _driver(rows):
    connection = repro.connect(":memory:")
    connection.execute(
        "CREATE TABLE items (a INTEGER, b INTEGER, c TEXT, g TEXT, t INTEGER)"
    )
    if rows:
        connection.cursor().executemany(
            "INSERT INTO items VALUES (?, ?, ?, ?, ?)", rows
        )
    return connection


@given(rows=rows_strategy, tree=trees_strategy, data=st.data())
@settings(max_examples=50, deadline=None)
def test_sql_pushdown_matches_oracle(rows, tree, data):
    grouping = data.draw(st.sampled_from(["", " GROUPING g", " GROUPING g, c"]))
    query = f"SELECT * FROM items PREFERRING {tree}{grouping}"
    connection = _driver(rows)
    try:
        engine_rel = repro.PreferenceEngine(
            {
                "items": repro.Relation(
                    columns=COLUMNS,
                    rows=connection.raw.execute(
                        "SELECT * FROM items"
                    ).fetchall(),
                )
            },
            algorithm="nested_loop",
        )
        oracle = sorted(engine_rel.execute(query).rows, key=repr)
        for strategy in STRATEGIES:
            got = sorted(
                connection.execute(query, algorithm=strategy).fetchall(),
                key=repr,
            )
            assert got == oracle, (tree, strategy)
    finally:
        connection.close()


@given(rows=rows_strategy, tree=trees_strategy, data=st.data())
@settings(max_examples=30, deadline=None)
def test_sql_pushdown_with_but_only_matches_oracle(rows, tree, data):
    threshold = data.draw(
        st.sampled_from(["DISTANCE(t) <= 2", "TOP(t) = 1"])
    )
    grouping = data.draw(st.sampled_from(["", " GROUPING g"]))
    query = (
        f"SELECT * FROM items PREFERRING t AROUND 3 AND ({tree})"
        f"{grouping} BUT ONLY {threshold}"
    )
    connection = _driver(rows)
    try:
        engine_rel = repro.PreferenceEngine(
            {
                "items": repro.Relation(
                    columns=COLUMNS,
                    rows=connection.raw.execute(
                        "SELECT * FROM items"
                    ).fetchall(),
                )
            },
            algorithm="nested_loop",
        )
        oracle = sorted(engine_rel.execute(query).rows, key=repr)
        for strategy in STRATEGIES:
            got = sorted(
                connection.execute(query, algorithm=strategy).fetchall(),
                key=repr,
            )
            assert got == oracle, (tree, strategy)
    finally:
        connection.close()


def test_pushdown_plan_is_reported_and_used():
    connection = _driver([(1, 2, "x", "p", 0), (3, 1, "y", "q", 1)] * 30)
    try:
        query = "SELECT * FROM items PREFERRING LOWEST(a) AND HIGHEST(b)"
        plan = connection.plan(query, force="sfs")
        assert plan.rank_source == "sql"
        assert plan.rank_width == 2
        assert plan.columnar == "pareto rank tuples"
        assert "__pref_rank_0" in plan.pushdown_sql
        report = dict(
            connection.execute(
                f"EXPLAIN PREFERENCE {query}", algorithm="sfs"
            ).fetchall()
        )
        assert "rank source" in report and "columnar" in report
        assert report["rank source"].startswith("sql")
        assert report["columnar"] == "pareto rank tuples"
    finally:
        connection.close()


def test_explicit_tree_reports_closure_fallback():
    connection = _driver([(1, 2, "x", "p", 0)] * 4)
    try:
        query = (
            "SELECT * FROM items "
            "PREFERRING EXPLICIT(c, 'x' > 'y') AND LOWEST(a)"
        )
        plan = connection.plan(query)
        assert plan.rank_source == "closure"
        assert plan.rank_width == 0
        rewrite_rows = connection.execute(query, algorithm="rewrite").fetchall()
        for strategy in ("bnl", "sfs", "dnc", "parallel"):
            assert (
                connection.execute(query, algorithm=strategy).fetchall()
                == rewrite_rows
            )
    finally:
        connection.close()


def test_parameterized_pushdown_rebinds_rank_expressions():
    connection = _driver(
        [(i % 7, (i * 3) % 5, "x", "p", i % 4) for i in range(60)]
    )
    try:
        query = "SELECT * FROM items PREFERRING a AROUND ? AND HIGHEST(b)"
        for target in (0, 3, 6):
            pushed = sorted(
                connection.execute(query, (target,), algorithm="sfs").fetchall(),
                key=repr,
            )
            oracle = sorted(
                connection.execute(
                    query, (target,), algorithm="rewrite"
                ).fetchall(),
                key=repr,
            )
            assert pushed == oracle, target
    finally:
        connection.close()


# ----------------------------------------------------------------------
# RankColumns plumbing


def test_select_renumbers_positions():
    preference = build_preference(parse_preferring("LOWEST(a) AND LOWEST(b)"))
    ranks = compute_rank_columns(preference, [(1, 9), (2, 8), (3, 7)])
    subset = ranks.select([2, 0])
    assert subset.rows == [(3.0, 7.0), (1.0, 9.0)]
    assert isinstance(ranks, RankColumns) and len(subset) == 2


def test_matrix_round_trips_columns():
    numpy = pytest.importorskip("numpy")
    preference = build_preference(parse_preferring("LOWEST(a) AND HIGHEST(b)"))
    ranks = compute_rank_columns(preference, [(1, 2), (3, None)])
    matrix = ranks.matrix()
    assert matrix.shape == (2, 2)
    assert matrix[0][0] == 1.0 and matrix[1][1] == pytest.approx(1.0e15)
    assert not math.isnan(matrix[1][1])
    assert numpy.shares_memory(matrix, matrix)  # smoke: it is an ndarray
